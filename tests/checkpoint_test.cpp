// Checkpoint/restore suite for streaming detection sessions.
//
// The headline contract: a session restored from a checkpoint blob is
// byte-identical to the original for the rest of its life — same verdicts,
// same score digest, same simulated time, same rtad.metrics.v1 export —
// under every scheduler kernel × GPU backend × trace protocol combination,
// with SoC fault streams straddling the boundary, and even when the blob is
// replayed under a *different* scheduler kernel than the one it was taken
// under (state at a run-API boundary is scheduler-invariant).
//
// Plus the blob format negatives (truncation, corruption, tampering) and
// the session lifecycle negatives (advance() after done, result() twice).
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "rtad/core/detection_session.hpp"
#include "rtad/core/experiment_runner.hpp"
#include "rtad/core/session_checkpoint.hpp"

namespace rtad::core {
namespace {

workloads::SpecProfile fast_profile(const std::string& name) {
  auto p = workloads::find_profile(name);
  p.syscall_interval_instrs = 40'000;  // keep sim time short
  return p;
}

TrainingOptions fast_training() {
  TrainingOptions opt;
  opt.lstm_train_tokens = 2'500;
  opt.lstm_val_tokens = 700;
  opt.elm_train_windows = 250;
  opt.elm_val_windows = 80;
  opt.lstm.epochs = 2;
  return opt;
}

std::shared_ptr<TrainedModelCache> shared_cache() {
  static const auto cache = std::make_shared<TrainedModelCache>(
      fast_training(),
      [](const std::string& name) { return fast_profile(name); });
  return cache;
}

/// Every deterministic DetectionResult field (same exclusion of the
/// sim.skipped* diagnostics the serve suite makes — chunk/replay
/// boundaries regroup event-kernel skips without moving any result).
void expect_identical(const DetectionResult& a, const DetectionResult& b) {
  EXPECT_EQ(a.benchmark, b.benchmark);
  EXPECT_EQ(a.attacks, b.attacks);
  EXPECT_EQ(a.detections, b.detections);
  EXPECT_EQ(a.mean_latency_us, b.mean_latency_us);
  EXPECT_EQ(a.min_latency_us, b.min_latency_us);
  EXPECT_EQ(a.max_latency_us, b.max_latency_us);
  EXPECT_EQ(a.fifo_drops, b.fifo_drops);
  EXPECT_EQ(a.false_positives, b.false_positives);
  EXPECT_EQ(a.inferences, b.inferences);
  EXPECT_EQ(a.score_digest, b.score_digest);
  EXPECT_EQ(a.simulated_ps, b.simulated_ps);
  EXPECT_EQ(a.trace_bytes_corrupted, b.trace_bytes_corrupted);
  EXPECT_EQ(a.decode_bad_packets, b.decode_bad_packets);
  EXPECT_EQ(a.decode_resyncs, b.decode_resyncs);
  EXPECT_EQ(a.ta_dropped_branches, b.ta_dropped_branches);
  EXPECT_EQ(a.mcm_recoveries, b.mcm_recoveries);
  EXPECT_EQ(a.mcm_stalls_injected, b.mcm_stalls_injected);
  EXPECT_EQ(a.irqs_lost, b.irqs_lost);
  EXPECT_EQ(a.bus_errors, b.bus_errors);
  EXPECT_EQ(a.bus_fault_cycles, b.bus_fault_cycles);
  EXPECT_EQ(a.fault_events, b.fault_events);
}

DetectionOptions session_options() {
  DetectionOptions opt;
  opt.attacks = 1;
  opt.seed = 23;
  opt.trace_path.clear();
  opt.metrics_path.clear();
  opt.faults.reset();
  return opt;
}

std::unique_ptr<DetectionSession> make_session(const DetectionOptions& opt) {
  auto cache = shared_cache();
  return std::make_unique<DetectionSession>(
      cache->profile("astar"), cache->get("astar"), ModelKind::kLstm,
      EngineKind::kMlMiaow, opt);
}

/// Advance to a mid-episode boundary: past warm-up, before completion
/// (clean fast-profile episodes run ~11 simulated ms; faulty ones longer).
void advance_to_mid(DetectionSession& session) {
  constexpr sim::Picoseconds kChunk = sim::kPsPerMs;
  while (!session.done() && session.now() < 4 * sim::kPsPerMs) {
    session.advance(kChunk);
  }
  ASSERT_FALSE(session.done()) << "episode finished before mid-point";
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

// FNV-1a matching the blob's trailing digest — used to *repair* the digest
// after deliberate tampering, so the negatives below reach the layer they
// target instead of tripping the digest check first.
std::uint64_t fnv1a(const std::uint8_t* data, std::size_t size) {
  std::uint64_t h = 14695981039346656037ULL;
  for (std::size_t i = 0; i < size; ++i) {
    h ^= data[i];
    h *= 1099511628211ULL;
  }
  return h;
}

void repair_digest(std::vector<std::uint8_t>& blob) {
  const std::uint64_t d = fnv1a(blob.data(), blob.size() - 8);
  for (int s = 0; s < 64; s += 8) {
    blob[blob.size() - 8 + static_cast<std::size_t>(s / 8)] =
        static_cast<std::uint8_t>(d >> s);
  }
}

TEST(SessionCheckpoint, BlobRoundTripsEveryField) {
  auto opt = session_options();
  opt.burst_events = 24;
  opt.cycle_accounts = true;
  opt.metrics_path = "ckpt_roundtrip_metrics.json";
  fault::FaultPlan plan;
  plan.set_rate(fault::FaultSite::kTraceBitFlip, 0.01);
  plan.serve.shard_crash = 0.5;
  plan.serve.max_events = 7;
  plan.seed = 0xBEEF;
  opt.faults = plan;

  auto session = make_session(opt);
  advance_to_mid(*session);
  const SessionCheckpoint ckpt = session->checkpoint();
  EXPECT_GT(ckpt.progress_ps, 0u);
  EXPECT_GT(ckpt.inferences, 0u);
  EXPECT_FALSE(ckpt.done);

  const auto blob = ckpt.serialize();
  // O(100 bytes): blobs park sessions, they do not serialize SoCs.
  EXPECT_LT(blob.size(), 600u);
  const SessionCheckpoint back = SessionCheckpoint::parse(blob);
  EXPECT_EQ(back.benchmark, ckpt.benchmark);
  EXPECT_EQ(back.model, ckpt.model);
  EXPECT_EQ(back.engine, ckpt.engine);
  EXPECT_EQ(back.options.attacks, ckpt.options.attacks);
  EXPECT_EQ(back.options.burst_events, 24u);
  EXPECT_EQ(back.options.seed, ckpt.options.seed);
  EXPECT_EQ(back.options.sched, ckpt.options.sched);
  EXPECT_EQ(back.options.backend, ckpt.options.backend);
  EXPECT_EQ(back.options.proto, ckpt.options.proto);
  EXPECT_TRUE(back.options.cycle_accounts);
  EXPECT_EQ(back.options.metrics_path, "ckpt_roundtrip_metrics.json");
  ASSERT_TRUE(back.options.faults.has_value());
  EXPECT_EQ(back.options.faults->rate(fault::FaultSite::kTraceBitFlip), 0.01);
  EXPECT_EQ(back.options.faults->serve.shard_crash, 0.5);
  EXPECT_EQ(back.options.faults->serve.max_events, 7u);
  EXPECT_EQ(back.options.faults->seed, 0xBEEFu);
  EXPECT_EQ(back.progress_ps, ckpt.progress_ps);
  EXPECT_EQ(back.score_digest, ckpt.score_digest);
  EXPECT_EQ(back.anomaly_flags, ckpt.anomaly_flags);
  EXPECT_EQ(back.inferences, ckpt.inferences);
  EXPECT_EQ(back.irqs_fired, ckpt.irqs_fired);
  EXPECT_EQ(back.attacks_completed, ckpt.attacks_completed);
  EXPECT_EQ(back.false_positives, ckpt.false_positives);
  EXPECT_EQ(back.phase, ckpt.phase);
  EXPECT_EQ(back.done, ckpt.done);

  // Same boundary, same bytes: the encoding itself is deterministic.
  EXPECT_EQ(blob, session->checkpoint().serialize());
}

TEST(SessionCheckpoint, ParseRejectsCorruptBlobs) {
  auto session = make_session(session_options());
  const auto blob = session->checkpoint().serialize();

  // Truncation, at the header and mid-blob.
  EXPECT_THROW(SessionCheckpoint::parse(blob.data(), 3), CheckpointError);
  EXPECT_THROW(SessionCheckpoint::parse(blob.data(), blob.size() - 5),
               CheckpointError);

  // Any flipped byte trips the digest.
  for (const std::size_t at : {std::size_t{0}, blob.size() / 2}) {
    auto bad = blob;
    bad[at] ^= 0x40;
    EXPECT_THROW(SessionCheckpoint::parse(bad), CheckpointError) << at;
  }

  // A wrong magic with a *valid* digest still parses as garbage — the
  // version gate rejects it even when the bytes are internally consistent.
  {
    auto bad = blob;
    bad[0] ^= 0x01;
    repair_digest(bad);
    EXPECT_THROW(SessionCheckpoint::parse(bad), CheckpointError);
  }

  // Trailing bytes (with a repaired digest) are a framing error.
  {
    auto bad = blob;
    bad.insert(bad.end() - 8, std::uint8_t{0});
    repair_digest(bad);
    EXPECT_THROW(SessionCheckpoint::parse(bad), CheckpointError);
  }

  // The pristine blob still parses after all that.
  EXPECT_NO_THROW(SessionCheckpoint::parse(blob));
}

TEST(SessionCheckpoint, RestoreRejectsTamperedCursorsAndWrongProfile) {
  auto cache = shared_cache();
  auto session = make_session(session_options());
  advance_to_mid(*session);
  SessionCheckpoint ckpt = session->checkpoint();

  // A tampered progress cursor survives re-serialization (fresh digest)
  // but the replay cross-check refuses to hand back a diverged session.
  {
    SessionCheckpoint bad = SessionCheckpoint::parse(ckpt.serialize());
    bad.score_digest ^= 1;
    EXPECT_THROW(DetectionSession::restore(bad, cache->profile("astar"),
                                           cache->get("astar")),
                 CheckpointError);
  }
  {
    SessionCheckpoint bad = ckpt;
    bad.inferences += 1;
    EXPECT_THROW(DetectionSession::restore(bad, cache->profile("astar"),
                                           cache->get("astar")),
                 CheckpointError);
  }

  // Wrong profile for the blob: refused by name before any replay (astar
  // models ride along untouched — the name gate fires first).
  EXPECT_THROW(DetectionSession::restore(ckpt, cache->profile("bzip2"),
                                         cache->get("astar")),
               CheckpointError);
}

TEST(SessionLifecycle, MisuseRaisesNamedErrors) {
  auto session = make_session(session_options());

  // Harvesting before completion is a lifecycle error.
  EXPECT_THROW(session->result(), SessionLifecycleError);

  session->run_to_completion();
  EXPECT_TRUE(session->done());
  // Idempotent: finishing a finished session is a no-op...
  EXPECT_NO_THROW(session->run_to_completion());
  // ...but advancing one is a caller bug (the SoC was harvested).
  EXPECT_THROW(session->advance(sim::kPsPerMs), SessionLifecycleError);

  // The result is a one-shot handoff.
  EXPECT_NO_THROW(session->result());
  EXPECT_THROW(session->result(), SessionLifecycleError);
}

TEST(SessionCheckpoint, RestoreByteIdenticalAcrossSchedBackendProtoMatrix) {
  auto cache = shared_cache();
  for (const auto sched :
       {sim::SchedMode::kDense, sim::SchedMode::kEventDriven}) {
    for (const auto backend :
         {gpgpu::GpuBackend::kCycle, gpgpu::GpuBackend::kFast}) {
      for (const auto proto :
           {trace::TraceProtocol::kPft, trace::TraceProtocol::kEtrace}) {
        SCOPED_TRACE(std::string(sched == sim::SchedMode::kDense ? "dense"
                                                                 : "event") +
                     "/" +
                     (backend == gpgpu::GpuBackend::kCycle ? "cycle"
                                                           : "fast") +
                     "/" +
                     (proto == trace::TraceProtocol::kPft ? "pft" : "etrace"));
        auto opt = session_options();
        opt.sched = sched;
        opt.backend = backend;
        opt.proto = proto;

        // Original: run to a mid-episode boundary, snapshot, keep going —
        // with a metrics export so the comparison covers the full
        // rtad.metrics.v1 surface, not just the result struct.
        const std::string path_a = "ckpt_matrix_a.json";
        const std::string path_b = "ckpt_matrix_b.json";
        auto original_opt = opt;
        original_opt.metrics_path = path_a;
        auto original = make_session(original_opt);
        advance_to_mid(*original);
        SessionCheckpoint ckpt = original->checkpoint();
        original->run_to_completion();

        // Restored twin: same blob, metrics to its own file.
        ckpt = SessionCheckpoint::parse(ckpt.serialize());
        ckpt.options.metrics_path = path_b;
        auto restored = DetectionSession::restore(ckpt, cache->profile("astar"),
                                                  cache->get("astar"));
        EXPECT_EQ(restored->now(), ckpt.progress_ps);
        EXPECT_EQ(restored->replayed_ps(), ckpt.progress_ps);
        EXPECT_FALSE(restored->done());
        restored->run_to_completion();

        expect_identical(restored->result(), original->result());
        const std::string a = slurp(path_a);
        const std::string b = slurp(path_b);
        EXPECT_FALSE(a.empty());
        EXPECT_EQ(a, b) << "metrics export diverged after restore";
        std::remove(path_a.c_str());
        std::remove(path_b.c_str());
      }
    }
  }
}

TEST(SessionCheckpoint, RestoreUnderFaultsStraddlingTheBoundary) {
  // SoC fault streams are per-datum, so replay re-fires the identical
  // fault sequence even when fires land on both sides of the checkpoint.
  auto opt = session_options();
  fault::FaultPlan plan;
  plan.set_rate(fault::FaultSite::kTraceBitFlip, 0.02);
  plan.set_rate(fault::FaultSite::kBusDelay, 0.05);
  plan.set_rate(fault::FaultSite::kMcmStall, 0.01);
  plan.set_rate(fault::FaultSite::kIrqLost, 0.05);
  opt.faults = plan;

  auto cache = shared_cache();
  auto original = make_session(opt);
  advance_to_mid(*original);
  const SessionCheckpoint ckpt = original->checkpoint();
  original->run_to_completion();
  const auto& want = original->result();
  ASSERT_GT(want.fault_events, 0u) << "plan too timid — nothing fired";

  auto restored = DetectionSession::restore(
      SessionCheckpoint::parse(ckpt.serialize()), cache->profile("astar"),
      cache->get("astar"));
  restored->run_to_completion();
  expect_identical(restored->result(), want);
}

TEST(SessionCheckpoint, BlobTakenUnderOneKernelRestoresUnderTheOther) {
  // Session state at a run-API boundary is scheduler-invariant, so a dense
  // checkpoint may be replayed by the event kernel (and vice versa) and
  // still land bit-exactly on the recorded cursors.
  auto cache = shared_cache();
  const auto flipped = [](sim::SchedMode m) {
    return m == sim::SchedMode::kDense ? sim::SchedMode::kEventDriven
                                       : sim::SchedMode::kDense;
  };
  for (const auto sched :
       {sim::SchedMode::kDense, sim::SchedMode::kEventDriven}) {
    SCOPED_TRACE(sched == sim::SchedMode::kDense ? "dense->event"
                                                 : "event->dense");
    auto opt = session_options();
    opt.sched = sched;
    auto original = make_session(opt);
    advance_to_mid(*original);
    SessionCheckpoint ckpt = original->checkpoint();
    original->run_to_completion();

    ckpt.options.sched = flipped(sched);
    auto restored = DetectionSession::restore(ckpt, cache->profile("astar"),
                                              cache->get("astar"));
    restored->run_to_completion();
    expect_identical(restored->result(), original->result());
  }
}

TEST(SessionCheckpoint, BoundaryCasesRoundTrip) {
  auto cache = shared_cache();

  // Before the first advance(): a zero-progress blob restores to a fresh
  // session (no replay at all).
  {
    auto session = make_session(session_options());
    const SessionCheckpoint ckpt = session->checkpoint();
    EXPECT_EQ(ckpt.progress_ps, 0u);
    auto restored = DetectionSession::restore(ckpt, cache->profile("astar"),
                                              cache->get("astar"));
    EXPECT_EQ(restored->now(), 0u);
    session->run_to_completion();
    restored->run_to_completion();
    expect_identical(restored->result(), session->result());
  }

  // After done(): the blob captures a finished episode; restore replays it
  // end-to-end and the result is immediately harvestable.
  {
    auto session = make_session(session_options());
    session->run_to_completion();
    const SessionCheckpoint ckpt = session->checkpoint();
    EXPECT_TRUE(ckpt.done);
    auto restored = DetectionSession::restore(ckpt, cache->profile("astar"),
                                              cache->get("astar"));
    EXPECT_TRUE(restored->done());
    expect_identical(restored->result(), session->result());
  }
}

/// Rewrite a v2 blob as its v1 ancestor: drop the ensemble shape (32 bytes
/// after the fault section — equivalently, 32 bytes before the 58-byte
/// progress block) and the ensemble cursors (the 36 bytes just before the
/// digest), stamp the RTADCKP1 magic, re-digest. This is exactly the
/// layout PR 8's serializer produced, so the test exercises the real
/// compatibility path without keeping an old binary around.
std::vector<std::uint8_t> downgrade_to_v1(std::vector<std::uint8_t> blob) {
  constexpr std::size_t kProgress = 7 * 8 + 2;  // 7 u64 + phase + done
  constexpr std::size_t kCursors = 4 + 4 * 8;
  constexpr std::size_t kParams = 2 * 4 + 3 * 8;
  blob.resize(blob.size() - 8);  // shed the digest
  blob.erase(blob.end() - static_cast<std::ptrdiff_t>(kCursors), blob.end());
  blob.erase(blob.end() - static_cast<std::ptrdiff_t>(kProgress + kParams),
             blob.end() - static_cast<std::ptrdiff_t>(kProgress));
  blob[7] = '1';
  blob.insert(blob.end(), 8, std::uint8_t{0});
  repair_digest(blob);
  return blob;
}

TEST(SessionCheckpoint, V1BlobsParseWithAnInertEnsemble) {
  auto cache = shared_cache();
  auto session = make_session(session_options());
  advance_to_mid(*session);
  const SessionCheckpoint want = session->checkpoint();
  ASSERT_FALSE(want.options.ensemble.active());

  const auto v1 = downgrade_to_v1(want.serialize());
  const SessionCheckpoint back = SessionCheckpoint::parse(v1);

  // The pre-ensemble fields all survive; the ensemble fields come back as
  // the inert defaults a v1 writer never knew about.
  EXPECT_EQ(back.benchmark, want.benchmark);
  EXPECT_EQ(back.progress_ps, want.progress_ps);
  EXPECT_EQ(back.score_digest, want.score_digest);
  EXPECT_EQ(back.inferences, want.inferences);
  EXPECT_EQ(back.options.seed, want.options.seed);
  EXPECT_FALSE(back.options.ensemble.active());
  EXPECT_EQ(back.ensemble_generation, 0u);
  EXPECT_EQ(back.ensemble_swaps, 0u);
  EXPECT_EQ(back.member_evals, 0u);

  // And it restores: a v1 park resumes byte-identical under the v2 build.
  auto restored = DetectionSession::restore(back, cache->profile("astar"),
                                            cache->get("astar"));
  session->run_to_completion();
  restored->run_to_completion();
  expect_identical(restored->result(), session->result());
}

TEST(SessionCheckpoint, UnknownVersionsAreNamedNotGarbage) {
  auto session = make_session(session_options());
  auto blob = session->checkpoint().serialize();
  blob[7] = '9';  // a well-formed RTADCKP tag from the future
  repair_digest(blob);
  try {
    SessionCheckpoint::parse(blob);
    FAIL() << "unknown version must throw";
  } catch (const CheckpointError& e) {
    EXPECT_NE(std::string(e.what()).find("unknown checkpoint version"),
              std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("RTADCKP9"), std::string::npos)
        << e.what();
  }
}

}  // namespace
}  // namespace rtad::core
