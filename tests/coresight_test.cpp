// CoreSight PTM / PFT encoder / TPIU tests, including encoder<->decoder
// round trips (the decoder under test lives in the IGM).
#include <gtest/gtest.h>

#include "rtad/coresight/pft_encoder.hpp"
#include "rtad/coresight/ptm.hpp"
#include "rtad/coresight/tpiu.hpp"
#include "rtad/igm/pft_decoder.hpp"
#include "rtad/sim/rng.hpp"

namespace rtad::coresight {
namespace {

using cpu::BranchEvent;
using cpu::BranchKind;
using igm::DecodedBranch;
using igm::PftStreamDecoder;

std::uint64_t workloads_syscall_addr() { return 0xC000'0040ULL; }

BranchEvent waypoint(std::uint64_t target, BranchKind kind = BranchKind::kCall) {
  BranchEvent ev;
  ev.kind = kind;
  ev.taken = true;
  ev.target = target;
  return ev;
}

std::vector<std::uint8_t> encode_with_sync(PftEncoder& enc,
                                           const std::vector<BranchEvent>& evs) {
  std::vector<std::uint8_t> bytes;
  enc.emit_sync(0, 1, bytes);
  for (const auto& ev : evs) enc.encode(ev, bytes);
  enc.flush_atoms(bytes);
  return bytes;
}

std::vector<DecodedBranch> decode_all(const std::vector<std::uint8_t>& bytes) {
  PftStreamDecoder dec;
  std::vector<DecodedBranch> out;
  std::uint64_t seq = 0;
  for (const auto b : bytes) {
    TraceByte tb{b, 0, seq++, false};
    if (auto d = dec.feed(tb)) out.push_back(*d);
  }
  return out;
}

TEST(PftEncoder, SyncPreambleShape) {
  PftEncoder enc;
  std::vector<std::uint8_t> bytes;
  enc.emit_sync(0x8000, 3, bytes);
  // 5 (async) + 6 (isync) + 2 (contextid)
  ASSERT_EQ(bytes.size(), 13u);
  EXPECT_EQ(bytes[0], 0x00);
  EXPECT_EQ(bytes[4], 0x80);
  EXPECT_EQ(bytes[5], kIsyncHeader);
  EXPECT_EQ(bytes[11], kContextIdHeader);
  EXPECT_EQ(bytes[12], 3);
}

TEST(PftEncoder, RoundTripSingleAddress) {
  PftEncoder enc;
  const auto bytes = encode_with_sync(enc, {waypoint(0x0001'2344)});
  const auto decoded = decode_all(bytes);
  ASSERT_EQ(decoded.size(), 1u);
  EXPECT_EQ(decoded[0].address, 0x0001'2344u);
  EXPECT_FALSE(decoded[0].is_syscall);
}

TEST(PftEncoder, RoundTripManyRandomAddresses) {
  sim::Xoshiro256 rng(42);
  PftEncoder enc;
  std::vector<BranchEvent> evs;
  for (int i = 0; i < 500; ++i) {
    evs.push_back(waypoint((rng.next() & 0xFFFF'FFFE) & 0x7FFF'FFFF));
  }
  const auto bytes = encode_with_sync(enc, evs);
  const auto decoded = decode_all(bytes);
  ASSERT_EQ(decoded.size(), evs.size());
  for (std::size_t i = 0; i < evs.size(); ++i) {
    EXPECT_EQ(decoded[i].address, evs[i].target & 0xFFFF'FFFE) << i;
  }
}

TEST(PftEncoder, AddressCompressionUsesPrefix) {
  PftEncoder enc;
  std::vector<std::uint8_t> bytes;
  enc.emit_sync(0, 1, bytes);
  enc.encode(waypoint(0x0010'0000), bytes);
  const std::size_t after_first = bytes.size();
  // Nearby address: only low bits change -> short packet.
  enc.encode(waypoint(0x0010'0040), bytes);
  const std::size_t second_len = bytes.size() - after_first;
  EXPECT_LE(second_len, 2u);
  // Verify compression helper agrees.
  EXPECT_EQ(enc.address_bytes_needed(0x0010'0044), 1);
  EXPECT_EQ(enc.address_bytes_needed(0x7000'0000), 5);
}

TEST(PftEncoder, SyscallAlwaysFullPacketWithInfo) {
  PftEncoder enc;
  const auto bytes = encode_with_sync(
      enc, {waypoint(workloads_syscall_addr(), BranchKind::kSyscall)});
  const auto decoded = decode_all(bytes);
  ASSERT_EQ(decoded.size(), 1u);
  EXPECT_TRUE(decoded[0].is_syscall);
}

TEST(PftEncoder, AtomsBatchInFours) {
  PftEncoder enc;
  std::vector<std::uint8_t> bytes;
  enc.emit_sync(0, 1, bytes);
  const std::size_t sync_len = bytes.size();
  BranchEvent cond;
  cond.kind = BranchKind::kConditional;
  for (int i = 0; i < 4; ++i) {
    cond.taken = i % 2 == 0;
    enc.encode(cond, bytes);
  }
  // Exactly one atom byte for four outcomes.
  EXPECT_EQ(bytes.size(), sync_len + 1);
  PftStreamDecoder dec;
  std::uint64_t seq = 0;
  for (const auto b : bytes) dec.feed(TraceByte{b, 0, seq++, false});
  EXPECT_EQ(dec.atoms_decoded(), 4u);
}

TEST(PftEncoder, AtomsFlushBeforeAddressPacket) {
  PftEncoder enc;
  std::vector<std::uint8_t> bytes;
  enc.emit_sync(0, 1, bytes);
  BranchEvent cond;
  cond.kind = BranchKind::kConditional;
  cond.taken = true;
  enc.encode(cond, bytes);   // pending atom
  enc.encode(waypoint(0x2000), bytes);
  const auto decoded = decode_all(bytes);
  ASSERT_EQ(decoded.size(), 1u);  // atom flushed first, then the address
  PftStreamDecoder dec;
  std::uint64_t seq = 0;
  for (const auto b : bytes) dec.feed(TraceByte{b, 0, seq++, false});
  EXPECT_EQ(dec.atoms_decoded(), 1u);
}

TEST(PftDecoder, IgnoresBytesUntilSync) {
  PftStreamDecoder dec;
  // Garbage that must not produce branches before a sync arrives.
  for (std::uint8_t b : {0x55, 0x13, 0x99, 0x01}) {
    EXPECT_FALSE(dec.feed(TraceByte{b, 0, 0, false}).has_value());
  }
  EXPECT_FALSE(dec.synced());
  PftEncoder enc;
  std::vector<std::uint8_t> bytes;
  enc.emit_sync(0x4000, 1, bytes);
  for (const auto b : bytes) dec.feed(TraceByte{b, 0, 0, false});
  EXPECT_TRUE(dec.synced());
  EXPECT_EQ(dec.last_address(), 0x4000u);
  EXPECT_EQ(dec.context_id(), 1u);
}

TEST(PftDecoder, ResyncsMidStream) {
  PftEncoder enc;
  std::vector<std::uint8_t> bytes;
  enc.emit_sync(0, 1, bytes);
  enc.encode(waypoint(0x1234), bytes);
  enc.emit_sync(0x9000, 2, bytes);
  enc.encode(waypoint(0x9040), bytes);
  const auto decoded = decode_all(bytes);
  ASSERT_EQ(decoded.size(), 2u);
  EXPECT_EQ(decoded[1].address, 0x9040u);
}

TEST(PftDecoder, SidebandsPropagate) {
  PftEncoder enc;
  std::vector<std::uint8_t> bytes;
  enc.emit_sync(0, 1, bytes);
  BranchEvent ev = waypoint(0x7777'7776);
  enc.encode(ev, bytes);
  PftStreamDecoder dec;
  std::optional<DecodedBranch> result;
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    TraceByte tb{bytes[i], 5'000, 17, true};
    if (auto d = dec.feed(tb)) result = d;
  }
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->origin_ps, 5'000u);
  EXPECT_EQ(result->event_seq, 17u);
  EXPECT_TRUE(result->injected);
}

TEST(Ptm, BuffersUntilThreshold) {
  PtmConfig cfg;
  cfg.flush_threshold = 16;
  cfg.drain_timeout_cycles = 1'000'000;  // effectively off
  Ptm ptm(cfg);
  BranchEvent ev = waypoint(0x3000);
  ev.retired_ps = 100;
  ptm.submit(ev);  // sync preamble (13B) + address packet < 16? 13+N
  ptm.tick();
  // First submit emits sync (13 bytes) + up to 5 address bytes >= 16
  // so draining starts immediately in this case; submit a case below the
  // threshold to verify buffering.
  Ptm ptm2(cfg);
  // no sync yet: first event will push it over; use a tiny event count.
  EXPECT_EQ(ptm2.tx_fifo().size(), 0u);
}

TEST(Ptm, DrainTimeoutFlushesQuietTraces) {
  PtmConfig cfg;
  cfg.flush_threshold = 1'000;  // never reached
  cfg.drain_timeout_cycles = 10;
  Ptm ptm(cfg);
  ptm.submit(waypoint(0x3000));
  for (int i = 0; i < 9; ++i) ptm.tick();
  EXPECT_EQ(ptm.tx_fifo().size(), 0u);  // still buffering
  for (int i = 0; i < 30; ++i) ptm.tick();
  EXPECT_GT(ptm.tx_fifo().size(), 0u);  // timeout drained it
}

TEST(Ptm, DisabledProducesNothing) {
  PtmConfig cfg;
  cfg.enabled = false;
  Ptm ptm(cfg);
  ptm.submit(waypoint(0x3000));
  for (int i = 0; i < 100; ++i) ptm.tick();
  EXPECT_EQ(ptm.bytes_generated(), 0u);
  EXPECT_EQ(ptm.events_traced(), 0u);
}

TEST(Ptm, PeriodicSyncEmitted) {
  PtmConfig cfg;
  cfg.sync_interval_bytes = 64;
  Ptm ptm(cfg);
  sim::Xoshiro256 rng(3);
  for (int i = 0; i < 200; ++i) {
    ptm.submit(waypoint(rng.next() & 0xFFFF'FFFE));
    ptm.tick();
  }
  // Expect several sync preambles: total bytes well above 200 * 5.
  EXPECT_GT(ptm.bytes_generated(), 200u * 2);
  EXPECT_EQ(ptm.events_traced(), 200u);
}

TEST(Tpiu, PacksFourBytesPerWord) {
  PtmConfig cfg;
  cfg.flush_threshold = 1;
  Ptm ptm(cfg);
  Tpiu tpiu(ptm.tx_fifo());
  ptm.submit(waypoint(0x1234'5678 & 0xFFFF'FFFE));
  for (int i = 0; i < 50; ++i) {
    ptm.tick();
    tpiu.tick();
  }
  ASSERT_GT(tpiu.port().size(), 0u);
  const TpiuWord w = *tpiu.port().pop();
  EXPECT_EQ(w.count, 4u);
  EXPECT_EQ(w.bytes[0].value, 0x00);  // sync preamble leads the stream
}

TEST(Tpiu, WordDataLittleEndianPacking) {
  TpiuWord w;
  w.count = 4;
  w.bytes[0].value = 0x11;
  w.bytes[1].value = 0x22;
  w.bytes[2].value = 0x33;
  w.bytes[3].value = 0x44;
  EXPECT_EQ(w.data(), 0x4433'2211u);
}

}  // namespace
}  // namespace rtad::coresight
