// Host CPU model + instrumentation cost tests.
#include <gtest/gtest.h>

#include "rtad/coresight/ptm.hpp"
#include "rtad/cpu/host_cpu.hpp"
#include "rtad/cpu/instrumentation.hpp"
#include "rtad/workloads/spec_model.hpp"

namespace rtad::cpu {
namespace {

workloads::SpecProfile test_profile() {
  auto p = workloads::find_profile("bzip2");
  p.syscall_interval_instrs = 10'000;
  return p;
}

TEST(Instrumentation, BaselineIsFree) {
  InstrumentationCosts costs;
  for (auto kind : {BranchKind::kConditional, BranchKind::kCall,
                    BranchKind::kSyscall}) {
    EXPECT_EQ(instrumentation_cost(InstrumentationMode::kBaseline, kind, costs),
              0.0);
  }
}

TEST(Instrumentation, SwSysChargesOnlySyscalls) {
  InstrumentationCosts costs;
  EXPECT_GT(instrumentation_cost(InstrumentationMode::kSwSys,
                                 BranchKind::kSyscall, costs),
            1000.0);
  EXPECT_EQ(instrumentation_cost(InstrumentationMode::kSwSys,
                                 BranchKind::kCall, costs),
            0.0);
  EXPECT_EQ(instrumentation_cost(InstrumentationMode::kSwSys,
                                 BranchKind::kConditional, costs),
            0.0);
}

TEST(Instrumentation, SwFuncChargesCallsReturnsSyscalls) {
  InstrumentationCosts costs;
  EXPECT_GT(instrumentation_cost(InstrumentationMode::kSwFunc,
                                 BranchKind::kCall, costs),
            0.0);
  EXPECT_GT(instrumentation_cost(InstrumentationMode::kSwFunc,
                                 BranchKind::kReturn, costs),
            0.0);
  EXPECT_EQ(instrumentation_cost(InstrumentationMode::kSwFunc,
                                 BranchKind::kConditional, costs),
            0.0);
}

TEST(Instrumentation, SwAllChargesEverything) {
  InstrumentationCosts costs;
  EXPECT_GT(instrumentation_cost(InstrumentationMode::kSwAll,
                                 BranchKind::kConditional, costs),
            1.0);
}

TEST(Instrumentation, RtadResidualIsTiny) {
  InstrumentationCosts costs;
  EXPECT_LT(instrumentation_cost(InstrumentationMode::kRtad,
                                 BranchKind::kConditional, costs),
            0.01);
}

TEST(Instrumentation, OnlyRtadUsesPtm) {
  EXPECT_TRUE(uses_ptm(InstrumentationMode::kRtad));
  EXPECT_FALSE(uses_ptm(InstrumentationMode::kBaseline));
  EXPECT_FALSE(uses_ptm(InstrumentationMode::kSwAll));
}

TEST(HostCpu, RetiresOneInstructionPerCycleBaseline) {
  workloads::TraceGenerator gen(test_profile(), 1);
  GeneratorSource src(gen);
  HostCpuConfig cfg;
  cfg.mode = InstrumentationMode::kBaseline;
  HostCpu cpu(cfg, src, nullptr);
  for (int i = 0; i < 10'000; ++i) cpu.tick();
  EXPECT_EQ(cpu.program_instructions(), 10'000u);
  EXPECT_EQ(cpu.overhead_instructions(), 0u);
}

TEST(HostCpu, InstrumentationStallsProgramProgress) {
  workloads::TraceGenerator gen(test_profile(), 1);
  GeneratorSource src(gen);
  HostCpuConfig cfg;
  cfg.mode = InstrumentationMode::kSwAll;
  HostCpu cpu(cfg, src, nullptr);
  for (int i = 0; i < 100'000; ++i) cpu.tick();
  EXPECT_GT(cpu.overhead_instructions(), 0u);
  EXPECT_EQ(cpu.program_instructions() + cpu.overhead_instructions(), 100'000u);
  // bzip2: ~15% branches x ~2.8 instr/branch => tens of percent overhead.
  const double ratio = static_cast<double>(cpu.overhead_instructions()) /
                       static_cast<double>(cpu.program_instructions());
  EXPECT_GT(ratio, 0.2);
  EXPECT_LT(ratio, 0.7);
}

TEST(HostCpu, FeedsPtmOnlyInRtadMode) {
  workloads::TraceGenerator gen(test_profile(), 1);
  GeneratorSource src(gen);
  coresight::Ptm ptm(coresight::PtmConfig{});
  HostCpuConfig cfg;
  cfg.mode = InstrumentationMode::kRtad;
  HostCpu cpu(cfg, src, &ptm);
  for (int i = 0; i < 5'000; ++i) cpu.tick();
  EXPECT_GT(ptm.events_traced(), 0u);
  EXPECT_EQ(ptm.events_traced(), cpu.branches_retired());

  workloads::TraceGenerator gen2(test_profile(), 1);
  GeneratorSource src2(gen2);
  coresight::Ptm ptm2(coresight::PtmConfig{});
  cfg.mode = InstrumentationMode::kSwAll;
  HostCpu cpu2(cfg, src2, &ptm2);
  for (int i = 0; i < 5'000; ++i) cpu2.tick();
  EXPECT_EQ(ptm2.events_traced(), 0u);
}

TEST(HostCpu, EventTimestampsMatchLocalClock) {
  workloads::TraceGenerator gen(test_profile(), 1);
  GeneratorSource src(gen);
  coresight::PtmConfig pcfg;
  pcfg.flush_threshold = 1;
  coresight::Ptm ptm(pcfg);
  HostCpuConfig cfg;
  HostCpu cpu(cfg, src, &ptm);
  for (int i = 0; i < 1'000; ++i) {
    cpu.tick();
    ptm.tick();
  }
  // Drain and check sidebands are plausible local times (<= elapsed).
  const auto elapsed = cpu.local_time_ps();
  while (auto b = ptm.tx_fifo().pop()) {
    EXPECT_LE(b->origin_ps, elapsed);
  }
}

TEST(HostCpu, IrqHandlerInvoked) {
  workloads::TraceGenerator gen(test_profile(), 1);
  GeneratorSource src(gen);
  HostCpu cpu(HostCpuConfig{}, src, nullptr);
  sim::Picoseconds seen = 0;
  cpu.set_irq_handler([&](sim::Picoseconds t) { seen = t; });
  cpu.raise_irq(123'456);
  EXPECT_EQ(cpu.irq_count(), 1u);
  EXPECT_EQ(seen, 123'456u);
  ASSERT_TRUE(cpu.last_irq_ps().has_value());
  EXPECT_EQ(*cpu.last_irq_ps(), 123'456u);
}

TEST(HostCpu, ResetClearsState) {
  workloads::TraceGenerator gen(test_profile(), 1);
  GeneratorSource src(gen);
  HostCpu cpu(HostCpuConfig{}, src, nullptr);
  for (int i = 0; i < 100; ++i) cpu.tick();
  cpu.raise_irq(5);
  cpu.reset();
  EXPECT_EQ(cpu.program_instructions(), 0u);
  EXPECT_EQ(cpu.cycles(), 0u);
  EXPECT_EQ(cpu.irq_count(), 0u);
}

TEST(HostCpu, SequenceNumbersAreMonotonic) {
  workloads::TraceGenerator gen(test_profile(), 1);
  GeneratorSource src(gen);
  coresight::PtmConfig pcfg;
  pcfg.flush_threshold = 1;
  pcfg.fifo_bytes = 4096;
  coresight::Ptm ptm(pcfg);
  HostCpu cpu(HostCpuConfig{}, src, &ptm);
  for (int i = 0; i < 2'000; ++i) {
    cpu.tick();
    ptm.tick();
  }
  std::uint64_t last_seq = 0;
  while (auto b = ptm.tx_fifo().pop()) {
    EXPECT_GE(b->event_seq, last_seq);
    last_seq = b->event_seq;
  }
}

}  // namespace
}  // namespace rtad::cpu
