// Determinism regression: the parallel experiment engine must produce
// bit-identical results for any worker count. The same (benchmark, seed)
// cells run serially (direct measure_detection) and through the pool at 1,
// 2, and 8 workers; detection latencies, the per-inference anomaly-score
// digest, and the FIFO-overflow counters must match exactly. Run under
// ThreadSanitizer (cmake -DRTAD_SANITIZE=thread) this doubles as the race
// detector for the whole train -> cache -> fan-out -> merge path.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "rtad/core/experiment_runner.hpp"

namespace rtad::core {
namespace {

workloads::SpecProfile fast_profile(const std::string& name) {
  auto p = workloads::find_profile(name);
  p.syscall_interval_instrs = 40'000;  // keep sim time short
  return p;
}

TrainingOptions fast_training() {
  TrainingOptions opt;
  opt.lstm_train_tokens = 2'500;
  opt.lstm_val_tokens = 700;
  opt.elm_train_windows = 250;
  opt.elm_val_windows = 80;
  opt.lstm.epochs = 2;
  return opt;
}

std::shared_ptr<TrainedModelCache> shared_cache() {
  static const auto cache = std::make_shared<TrainedModelCache>(
      fast_training(), [](const std::string& name) {
        return fast_profile(name);
      });
  return cache;
}

std::vector<DetectionCell> matrix() {
  DetectionOptions dopt;
  dopt.attacks = 2;
  // Both models twice over: repeats give the pool real contention at 8
  // workers, and every repeat must still be bit-identical.
  std::vector<DetectionCell> cells;
  for (int repeat = 0; repeat < 2; ++repeat) {
    cells.push_back({"astar", ModelKind::kElm, EngineKind::kMlMiaow, dopt});
    cells.push_back({"astar", ModelKind::kLstm, EngineKind::kMlMiaow, dopt});
    cells.push_back({"astar", ModelKind::kLstm, EngineKind::kMiaow, dopt});
  }
  return cells;
}

void expect_identical(const DetectionResult& a, const DetectionResult& b) {
  EXPECT_EQ(a.benchmark, b.benchmark);
  EXPECT_EQ(a.attacks, b.attacks);
  EXPECT_EQ(a.detections, b.detections);
  // Latencies are compared bitwise (EXPECT_EQ, not NEAR): any divergence
  // means a run observed state from outside its own simulation.
  EXPECT_EQ(a.mean_latency_us, b.mean_latency_us);
  EXPECT_EQ(a.min_latency_us, b.min_latency_us);
  EXPECT_EQ(a.max_latency_us, b.max_latency_us);
  EXPECT_EQ(a.fifo_drops, b.fifo_drops);
  EXPECT_EQ(a.false_positives, b.false_positives);
  EXPECT_EQ(a.inferences, b.inferences);
  EXPECT_EQ(a.score_digest, b.score_digest);
  EXPECT_EQ(a.simulated_ps, b.simulated_ps);
}

TEST(Determinism, PoolMatchesSerialAtEveryWorkerCount) {
  const auto cells = matrix();
  auto cache = shared_cache();

  // Serial reference: direct measure_detection calls, no pool involved.
  std::vector<DetectionResult> serial;
  for (const auto& cell : cells) {
    serial.push_back(measure_detection(cache->profile(cell.benchmark),
                                       cache->get(cell.benchmark), cell.model,
                                       cell.engine, cell.options));
  }

  for (const std::size_t jobs : {1u, 2u, 8u}) {
    SCOPED_TRACE("jobs=" + std::to_string(jobs));
    ExperimentRunner runner(jobs, cache);
    const auto results = runner.run_detection_matrix(cells);
    ASSERT_EQ(results.size(), cells.size());
    for (std::size_t i = 0; i < cells.size(); ++i) {
      SCOPED_TRACE("cell=" + std::to_string(i));
      expect_identical(results[i].detection, serial[i]);
    }
  }
}

TEST(Determinism, RepeatedCellsAreBitIdenticalWithinOneRun) {
  ExperimentRunner runner(8, shared_cache());
  const auto cells = matrix();
  const auto results = runner.run_detection_matrix(cells);
  ASSERT_EQ(results.size(), 6u);
  for (std::size_t i = 0; i < 3; ++i) {
    SCOPED_TRACE("cell=" + std::to_string(i));
    expect_identical(results[i].detection, results[i + 3].detection);
  }
}

TEST(Determinism, EventKernelMatchesDenseBitForBit) {
  // The dense kernel is the bit-identity reference for the event-driven
  // scheduler: same fired edges, same timestamps, same scores. Compare
  // every cell of the matrix across the two kernels, serially.
  auto cache = shared_cache();
  for (auto cell : matrix()) {
    SCOPED_TRACE(cell.benchmark + " model=" +
                 std::to_string(static_cast<int>(cell.model)) + " engine=" +
                 std::to_string(static_cast<int>(cell.engine)));
    cell.options.sched = sim::SchedMode::kDense;
    const auto dense =
        measure_detection(cache->profile(cell.benchmark),
                          cache->get(cell.benchmark), cell.model, cell.engine,
                          cell.options);
    cell.options.sched = sim::SchedMode::kEventDriven;
    const auto event =
        measure_detection(cache->profile(cell.benchmark),
                          cache->get(cell.benchmark), cell.model, cell.engine,
                          cell.options);
    expect_identical(dense, event);
    // The event kernel must actually have slept through something, or this
    // test degenerates into dense-vs-dense.
    EXPECT_GT(event.skipped_edge_groups, 0u);
    EXPECT_GT(event.skipped_cycles, 0u);
    EXPECT_EQ(dense.skipped_edge_groups, 0u);
  }
}

TEST(Determinism, EventKernelMatchesDenseThroughThePool) {
  // Same comparison fanned out across 8 workers: scheduling mode must not
  // interact with the trained-model cache or result merge order.
  auto cells = matrix();
  for (auto& cell : cells) cell.options.sched = sim::SchedMode::kDense;
  ExperimentRunner dense_runner(8, shared_cache());
  const auto dense = dense_runner.run_detection_matrix(cells);

  for (auto& cell : cells) cell.options.sched = sim::SchedMode::kEventDriven;
  ExperimentRunner event_runner(8, shared_cache());
  const auto event = event_runner.run_detection_matrix(cells);

  ASSERT_EQ(dense.size(), event.size());
  for (std::size_t i = 0; i < dense.size(); ++i) {
    SCOPED_TRACE("cell=" + std::to_string(i));
    expect_identical(dense[i].detection, event[i].detection);
  }
}

TEST(Determinism, ModelCacheTrainsEachBenchmarkOnce) {
  auto cache = shared_cache();
  // Every preceding test and worker count hit the same benchmark; the
  // LSTM BPTT + ELM solve must still have run exactly once.
  cache->get("astar");
  EXPECT_EQ(cache->trainings(), 1u);
}

TEST(Determinism, CacheReturnsSameInstanceAcrossThreads) {
  auto cache = shared_cache();
  sim::ThreadPool pool(4);
  std::vector<std::future<const TrainedModels*>> futures;
  for (int i = 0; i < 16; ++i) {
    futures.push_back(pool.submit([&] { return &cache->get("astar"); }));
  }
  std::vector<const TrainedModels*> instances;
  instances.reserve(futures.size());
  for (auto& f : futures) instances.push_back(f.get());
  for (const auto* p : instances) EXPECT_EQ(p, instances.front());
}

}  // namespace
}  // namespace rtad::core
