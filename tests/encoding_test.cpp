// Binary machine-code image tests: round trips through encode/decode and
// device memory, malformed-image rejection, and execution equivalence of
// decoded kernels.
#include <gtest/gtest.h>

#include "rtad/gpgpu/assembler.hpp"
#include "rtad/gpgpu/encoding.hpp"
#include "rtad/gpgpu/gpu.hpp"
#include "rtad/ml/kernels.hpp"

namespace rtad::gpgpu {
namespace {

bool instructions_equal(const Instruction& a, const Instruction& b) {
  return a.op == b.op && a.dst == b.dst && a.src0 == b.src0 &&
         a.src1 == b.src1 && a.src2 == b.src2 && a.imm == b.imm;
}

TEST(Encoding, RoundTripsSimpleProgram) {
  const auto prog = assemble(R"(
.kernel demo
.vgprs 12
.lds 512
start:
  s_mov_b32 s4, 0x1234
  v_mac_f32 v2, v3, 1.5
  v_cndmask_b32 v4, 0, 1
  global_load_dword v5, v6, s7, 64
  s_cbranch_scc1 start
  s_endpgm
)");
  const auto image = encode_program(prog);
  EXPECT_EQ(image.size(),
            kImageHeaderWords + prog.code.size() * kWordsPerInstruction);
  const auto back = decode_program(image, "demo");
  EXPECT_EQ(back.num_vgprs, prog.num_vgprs);
  EXPECT_EQ(back.lds_bytes, prog.lds_bytes);
  ASSERT_EQ(back.code.size(), prog.code.size());
  for (std::size_t i = 0; i < prog.code.size(); ++i) {
    EXPECT_TRUE(instructions_equal(back.code[i], prog.code[i])) << i;
  }
}

TEST(Encoding, RoundTripsAllShippedKernels) {
  for (const auto& prog :
       {ml::kernels::elm_hidden(), ml::kernels::elm_recon(),
        ml::kernels::elm_score(), ml::kernels::lstm_gates(),
        ml::kernels::lstm_state(), ml::kernels::lstm_logits(),
        ml::kernels::lstm_score()}) {
    const auto back = decode_program(encode_program(prog), prog.name);
    ASSERT_EQ(back.code.size(), prog.code.size()) << prog.name;
    for (std::size_t i = 0; i < prog.code.size(); ++i) {
      EXPECT_TRUE(instructions_equal(back.code[i], prog.code[i]))
          << prog.name << " @" << i;
    }
  }
}

TEST(Encoding, DecodedKernelExecutesIdentically) {
  const auto prog = assemble(R"(
  s_mov_b32 s4, 4096
  v_cvt_f32_u32 v2, v0
  v_mul_f32 v2, v2, 0.25
  v_lshlrev_b32 v3, 2, v0
  global_store_dword v2, v3, s4
  s_endpgm
)");
  const auto decoded = decode_program(encode_program(prog));

  auto run = [](const Program& p) {
    GpuConfig cfg;
    Gpu gpu(cfg);
    LaunchConfig launch;
    launch.program = &p;
    gpu.launch(launch);
    gpu.run_to_completion();
    std::vector<std::uint32_t> out(64);
    gpu.memory().read_block(4096, out.data(), out.size());
    return out;
  };
  EXPECT_EQ(run(prog), run(decoded));
}

TEST(Encoding, StoresAndLoadsThroughDeviceMemory) {
  const auto prog = assemble("  v_mov_b32 v2, 9\n  s_endpgm\n");
  DeviceMemory mem(1 << 16);
  const std::size_t bytes = store_program(mem, 0x2000, prog);
  EXPECT_EQ(bytes, (kImageHeaderWords + 2 * kWordsPerInstruction) * 4);
  const auto back = load_program(mem, 0x2000, "reloaded");
  EXPECT_EQ(back.name, "reloaded");
  ASSERT_EQ(back.code.size(), 2u);
  EXPECT_EQ(back.code[0].op, Opcode::V_MOV_B32);
}

TEST(Encoding, RejectsMalformedImages) {
  const auto prog = assemble("  s_endpgm\n");
  auto image = encode_program(prog);

  auto corrupted = image;
  corrupted[0] = 0xDEAD;
  EXPECT_THROW(decode_program(corrupted), EncodingError);

  corrupted = image;
  corrupted[1] = 99;  // wrong count
  EXPECT_THROW(decode_program(corrupted), EncodingError);

  corrupted = image;
  corrupted[kImageHeaderWords] = 0x0000'0000;  // bad instruction magic
  EXPECT_THROW(decode_program(corrupted), EncodingError);

  corrupted = image;
  corrupted[kImageHeaderWords] =
      (kInstrMagic << 16) | 0xFFFF;  // bad opcode
  EXPECT_THROW(decode_program(corrupted), EncodingError);

  DeviceMemory mem(4096);
  EXPECT_THROW(load_program(mem, 0), EncodingError);
}

TEST(Encoding, RejectsSrc2LiteralPlusImm) {
  Program prog;
  prog.name = "bad";
  Instruction inst;
  inst.op = Opcode::V_MAD_F32;
  inst.dst = Operand::vgpr(1);
  inst.src0 = Operand::vgpr(2);
  inst.src1 = Operand::vgpr(3);
  inst.src2 = Operand::litf(1.0f);
  inst.imm = 4;  // collides with the src2 literal slot
  prog.code.push_back(inst);
  EXPECT_THROW(encode_program(prog), EncodingError);
}

TEST(Encoding, LiteralPayloadsSurviveBitExactly) {
  Program prog;
  Instruction inst;
  inst.op = Opcode::V_MAD_F32;
  inst.dst = Operand::vgpr(1);
  inst.src0 = Operand::litf(-1.4426950408889634f);
  inst.src1 = Operand::lit(0xDEADBEEF);
  inst.src2 = Operand::litf(0.0f);
  prog.code.push_back(inst);
  Instruction end;
  end.op = Opcode::S_ENDPGM;
  prog.code.push_back(end);
  const auto back = decode_program(encode_program(prog));
  EXPECT_EQ(back.code[0].src0.literal, prog.code[0].src0.literal);
  EXPECT_EQ(back.code[0].src1.literal, 0xDEADBEEFu);
  EXPECT_EQ(back.code[0].src2.literal, prog.code[0].src2.literal);
}

}  // namespace
}  // namespace rtad::gpgpu
