// Rolling-ensemble suite (tier 2): knob grammar, generation cache
// semantics, and the headline determinism contracts.
//
// The contracts under test:
//   1. RTAD_ENSEMBLE_* knobs follow the strict core::env grammar —
//      malformed values and a quorum larger than the ensemble throw named
//      errors, they never silently decay.
//   2. Generation 0 *is* the anchor: the generation cache delegates to the
//      base TrainedModelCache without retraining anything, and each later
//      generation trains exactly once no matter how many sessions ask.
//   3. Hot swaps land only at advance() boundaries and at the same
//      simulated instants for every chunk size, scheduler kernel and GPU
//      backend — the full DetectionResult (score digest, consensus
//      counters, swap count) is identical across the matrix.
//   4. A checkpoint taken between two swaps restores into a session that
//      finishes byte-identical to the uninterrupted run; restoring an
//      active-ensemble blob without an EnsembleSource is a named error.
//   5. The serve fleet's ensemble counters are worker-count invariant.
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "rtad/core/detection_session.hpp"
#include "rtad/core/experiment_runner.hpp"
#include "rtad/core/session_checkpoint.hpp"
#include "rtad/ensemble/ensemble_manager.hpp"
#include "rtad/serve/service.hpp"
#include "rtad/serve/shard.hpp"
#include "rtad/workloads/catalog.hpp"

namespace rtad {
namespace {

constexpr const char* kDriftBench = "astar-drift";
constexpr std::uint64_t kDriftPeriodUs = 2'000;

/// Short-episode profile (the checkpoint suite's trick) with a drifting
/// variant: 4 phases on a 2 ms period, syscall head rotated per phase.
workloads::SpecProfile fast_profile(const std::string& name) {
  auto p = workloads::find_profile(name == kDriftBench ? "astar" : name);
  p.syscall_interval_instrs = 40'000;
  if (name == kDriftBench) {
    p.name = kDriftBench;
    p.drift.period_us = kDriftPeriodUs;
    p.drift.phases = 4;
    p.drift.syscall_rotate = 7;
  }
  return p;
}

core::TrainingOptions fast_training() {
  core::TrainingOptions opt;
  opt.lstm_train_tokens = 400;
  opt.lstm_val_tokens = 150;
  opt.elm_train_windows = 100;
  opt.elm_val_windows = 40;
  opt.lstm.epochs = 1;
  return opt;
}

std::shared_ptr<core::TrainedModelCache> shared_cache() {
  static const auto cache = std::make_shared<core::TrainedModelCache>(
      fast_training(),
      [](const std::string& name) { return fast_profile(name); });
  return cache;
}

/// Ensemble of 3 staggered generations rolling every drift period, full
/// quorum — the geometry the drift bench gates on, scaled down.
core::EnsembleParams test_params() {
  core::EnsembleParams ep;
  ep.size = 3;
  ep.quorum = 0;
  ep.retrain_ps = sim::Picoseconds{kDriftPeriodUs} * sim::kPsPerUs;
  return ep;
}

core::DetectionOptions session_options() {
  core::DetectionOptions opt;
  opt.attacks = 2;
  opt.seed = 23;
  opt.trace_path.clear();
  opt.metrics_path.clear();
  opt.faults.reset();
  return opt;
}

void expect_identical(const core::DetectionResult& a,
                      const core::DetectionResult& b) {
  EXPECT_EQ(a.detections, b.detections);
  EXPECT_EQ(a.false_positives, b.false_positives);
  EXPECT_EQ(a.inferences, b.inferences);
  EXPECT_EQ(a.score_digest, b.score_digest);
  EXPECT_EQ(a.simulated_ps, b.simulated_ps);
  EXPECT_EQ(a.ensemble_size, b.ensemble_size);
  EXPECT_EQ(a.ensemble_swaps, b.ensemble_swaps);
  EXPECT_EQ(a.consensus_flags, b.consensus_flags);
  EXPECT_EQ(a.consensus_overrides, b.consensus_overrides);
  EXPECT_EQ(a.member_evals, b.member_evals);
}

class EnsembleEnv : public ::testing::Test {
 protected:
  static constexpr const char* kVars[4] = {
      "RTAD_ENSEMBLE_SIZE", "RTAD_ENSEMBLE_QUORUM",
      "RTAD_ENSEMBLE_RETRAIN_US", "RTAD_ENSEMBLE_WINDOW"};
  void SetUp() override { clear(); }
  void TearDown() override { clear(); }
  static void clear() {
    for (const char* v : kVars) ASSERT_EQ(unsetenv(v), 0);
  }
  static void set(const char* var, const char* value) {
    ASSERT_EQ(setenv(var, value, 1), 0);
  }
};

TEST_F(EnsembleEnv, DefaultsAreInert) {
  const core::EnsembleParams p = ensemble::params_from_env();
  EXPECT_EQ(p.size, 1u);
  EXPECT_EQ(p.quorum, 0u);
  EXPECT_EQ(p.retrain_ps, 0u);
  EXPECT_EQ(p.window_ps, 0u);
  EXPECT_FALSE(p.active());
}

TEST_F(EnsembleEnv, ParsesEveryKnob) {
  set("RTAD_ENSEMBLE_SIZE", "5");
  set("RTAD_ENSEMBLE_QUORUM", "3");
  set("RTAD_ENSEMBLE_RETRAIN_US", "25000");
  set("RTAD_ENSEMBLE_WINDOW", "10000");
  const core::EnsembleParams p = ensemble::params_from_env();
  EXPECT_EQ(p.size, 5u);
  EXPECT_EQ(p.quorum, 3u);
  EXPECT_EQ(p.retrain_ps, sim::Picoseconds{25'000} * sim::kPsPerUs);
  EXPECT_EQ(p.window_ps, sim::Picoseconds{10'000} * sim::kPsPerUs);
  EXPECT_TRUE(p.active());
}

TEST_F(EnsembleEnv, MalformedAndInconsistentKnobsThrow) {
  set("RTAD_ENSEMBLE_SIZE", "0");  // size is positive_or: zero is malformed
  EXPECT_THROW(ensemble::params_from_env(), std::invalid_argument);
  clear();
  set("RTAD_ENSEMBLE_RETRAIN_US", "fast");
  EXPECT_THROW(ensemble::params_from_env(), std::invalid_argument);
  clear();
  set("RTAD_ENSEMBLE_SIZE", "3");
  set("RTAD_ENSEMBLE_QUORUM", "4");
  try {
    ensemble::params_from_env();
    FAIL() << "quorum > size must throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("RTAD_ENSEMBLE_QUORUM"),
              std::string::npos);
  }
}

TEST(EnsembleSchedule, MembershipIsAPureFunctionOfSimulatedTime) {
  core::EnsembleParams p = test_params();
  const sim::Picoseconds cadence = p.retrain_ps;
  EXPECT_EQ(p.generation_at(0), 0u);
  EXPECT_EQ(p.generation_at(cadence - 1), 0u);
  EXPECT_EQ(p.generation_at(cadence), 1u);
  EXPECT_EQ(p.generation_at(5 * cadence + 1), 5u);

  // A fleet-time origin shifts the whole schedule: a session admitted at
  // T0 sees the generations the fleet clock says are live, not its own.
  p.base_ps = 3 * cadence;
  EXPECT_EQ(p.generation_at(0), 3u);
  EXPECT_EQ(p.generation_at(cadence), 4u);

  // Training snapshots trail activation by the window, clamped at 0.
  p.base_ps = 0;
  EXPECT_EQ(p.training_snapshot_ps(0), 0u);
  EXPECT_EQ(p.training_snapshot_ps(1), 0u);  // activation == window
  EXPECT_EQ(p.training_snapshot_ps(4), 3 * cadence);
  p.window_ps = cadence / 2;
  EXPECT_EQ(p.training_snapshot_ps(4), 4 * cadence - cadence / 2);
}

TEST(GenerationCache, AnchorDelegatesAndGenerationsTrainOnce) {
  auto base = shared_cache();
  ensemble::GenerationCache cache(base, test_params());

  // Generation 0 is the anchor entry itself — same object, no retrain.
  const core::TrainedModels& anchor =
      cache.get(kDriftBench, core::ModelKind::kElm, 0);
  EXPECT_EQ(&anchor, &base->get(kDriftBench));
  EXPECT_EQ(cache.generations_trained(), 0u);

  // Generation 1 trains once (ELM side only) no matter who asks.
  const core::TrainedModels& g1 =
      cache.get(kDriftBench, core::ModelKind::kElm, 1);
  EXPECT_EQ(cache.generations_trained(), 1u);
  EXPECT_GT(cache.retrain_work_units(), 0u);
  EXPECT_EQ(&cache.get(kDriftBench, core::ModelKind::kElm, 1), &g1);
  EXPECT_EQ(cache.generations_trained(), 1u);
  EXPECT_NE(&g1, &anchor);
}

std::unique_ptr<core::DetectionSession> make_ensemble_session(
    ensemble::EnsembleManager& mgr, const core::DetectionOptions& base_opts) {
  auto cache = shared_cache();
  core::DetectionOptions opts = base_opts;
  opts.ensemble = mgr.params();
  return std::make_unique<core::DetectionSession>(
      cache->profile(kDriftBench), cache->get(kDriftBench),
      core::ModelKind::kElm, core::EngineKind::kMlMiaow, opts,
      &mgr.source(kDriftBench, core::ModelKind::kElm));
}

TEST(EnsembleDeterminism, SwapsLandIdenticallyForEveryChunkKernelAndBackend) {
  auto cache = shared_cache();

  struct Variant {
    const char* label;
    sim::SchedMode sched;
    gpgpu::GpuBackend backend;
    sim::Picoseconds chunk;  ///< 0 = run_to_completion
  };
  const Variant variants[] = {
      {"dense/cycle/700us", sim::SchedMode::kDense,
       gpgpu::GpuBackend::kCycle, 700 * sim::kPsPerUs},
      {"dense/cycle/3ms", sim::SchedMode::kDense, gpgpu::GpuBackend::kCycle,
       3 * sim::kPsPerMs},
      {"dense/cycle/oneshot", sim::SchedMode::kDense,
       gpgpu::GpuBackend::kCycle, 0},
      {"event/cycle/700us", sim::SchedMode::kEventDriven,
       gpgpu::GpuBackend::kCycle, 700 * sim::kPsPerUs},
      {"dense/fast/700us", sim::SchedMode::kDense, gpgpu::GpuBackend::kFast,
       700 * sim::kPsPerUs},
      {"event/fast/3ms", sim::SchedMode::kEventDriven, gpgpu::GpuBackend::kFast,
       3 * sim::kPsPerMs},
  };

  std::vector<core::DetectionResult> results;
  for (const Variant& v : variants) {
    ensemble::EnsembleManager mgr(cache, test_params());
    core::DetectionOptions opts = session_options();
    opts.sched = v.sched;
    opts.backend = v.backend;
    auto session = make_ensemble_session(mgr, opts);
    if (v.chunk == 0) {
      session->run_to_completion();
    } else {
      while (session->advance(v.chunk)) {
      }
    }
    results.push_back(session->result());
  }

  // The episode must actually cross swap boundaries with all members live,
  // or the matrix proves nothing.
  EXPECT_GE(results[0].ensemble_swaps, 2u) << "episode too short to swap";
  EXPECT_EQ(results[0].ensemble_size, 3u);
  EXPECT_GT(results[0].member_evals, results[0].inferences);
  for (std::size_t i = 1; i < std::size(results); ++i) {
    SCOPED_TRACE(variants[i].label);
    expect_identical(results[0], results[i]);
  }
}

TEST(EnsembleCheckpoint, RestoreStraddlesASwapBoundary) {
  auto cache = shared_cache();
  const auto params = test_params();

  ensemble::EnsembleManager straight_mgr(cache, params);
  auto straight = make_ensemble_session(straight_mgr, session_options());
  while (straight->advance(900 * sim::kPsPerUs)) {
  }
  const core::DetectionResult want = straight->result();

  // Park between the second and third swap (not on a boundary), round-trip
  // the blob through bytes, restore against a *fresh* manager (cold
  // generation cache — restore retrains what it needs) and finish.
  ensemble::EnsembleManager park_mgr(cache, params);
  auto parked = make_ensemble_session(park_mgr, session_options());
  const sim::Picoseconds park_at =
      2 * params.retrain_ps + params.retrain_ps / 2;
  while (!parked->done() && parked->now() < park_at) {
    parked->advance(900 * sim::kPsPerUs);
  }
  ASSERT_FALSE(parked->done()) << "episode finished before the swap window";
  const auto blob = parked->checkpoint().serialize();
  const core::SessionCheckpoint ckpt = core::SessionCheckpoint::parse(blob);
  ASSERT_TRUE(ckpt.options.ensemble.active());
  EXPECT_EQ(ckpt.ensemble_generation, 2u);
  EXPECT_EQ(ckpt.ensemble_swaps, 2u);

  ensemble::EnsembleManager resume_mgr(cache, params);
  auto resumed = core::DetectionSession::restore(
      ckpt, cache->profile(kDriftBench), cache->get(kDriftBench),
      &resume_mgr.source(kDriftBench, core::ModelKind::kElm));
  while (resumed->advance(900 * sim::kPsPerUs)) {
  }
  expect_identical(want, resumed->result());

  // An active-ensemble blob without a source is a named restore error, and
  // a session constructed with active options but no source is a misuse.
  EXPECT_THROW(core::DetectionSession::restore(ckpt,
                                               cache->profile(kDriftBench),
                                               cache->get(kDriftBench)),
               core::CheckpointError);
  core::DetectionOptions opts = session_options();
  opts.ensemble = params;
  EXPECT_THROW(core::DetectionSession(cache->profile(kDriftBench),
                                      cache->get(kDriftBench),
                                      core::ModelKind::kElm,
                                      core::EngineKind::kMlMiaow, opts),
               std::invalid_argument);
}

serve::ServiceReport run_fleet(std::size_t jobs) {
  if (setenv("RTAD_JOBS", std::to_string(jobs).c_str(), 1) != 0) {
    throw std::runtime_error("setenv(RTAD_JOBS) failed");
  }
  serve::ServiceConfig cfg;
  cfg.shards = 2;
  cfg.lanes = 2;
  cfg.ensemble = test_params();
  serve::Service service(cfg, shared_cache());
  std::vector<serve::SessionRequest> reqs;
  for (std::size_t i = 0; i < 4; ++i) {
    serve::SessionRequest req;
    req.tenant = "tenant-" + std::to_string(i);
    req.cls = serve::TenantClass::kBatch;
    req.benchmark = kDriftBench;
    req.model = core::ModelKind::kElm;
    req.engine = core::EngineKind::kMlMiaow;
    req.arrival_ps = static_cast<sim::Picoseconds>(i) * sim::kPsPerMs;
    req.seed = 31 + 7 * i;
    req.attacks = 1;
    reqs.push_back(std::move(req));
  }
  return service.run(reqs);
}

TEST(EnsembleServe, FleetCountersAreWorkerCountInvariant) {
  const serve::ServiceReport one = run_fleet(1);
  const serve::ServiceReport four = run_fleet(4);
  ASSERT_EQ(unsetenv("RTAD_JOBS"), 0);

  EXPECT_EQ(one.sessions_completed, 4u);
  EXPECT_GT(one.ensemble_swaps, 0u);
  EXPECT_GT(one.generations_trained, 0u);
  EXPECT_GT(one.member_evals, 0u);

  EXPECT_EQ(four.sessions_completed, one.sessions_completed);
  EXPECT_EQ(four.ensemble_swaps, one.ensemble_swaps);
  EXPECT_EQ(four.consensus_flags, one.consensus_flags);
  EXPECT_EQ(four.consensus_overrides, one.consensus_overrides);
  EXPECT_EQ(four.member_evals, one.member_evals);
  EXPECT_EQ(four.generations_trained, one.generations_trained);
  EXPECT_EQ(four.retrain_work_units, one.retrain_work_units);
}

TEST(EnsembleServe, ShardRefusesActiveEnsembleWithoutManager) {
  serve::ShardConfig cfg;
  cfg.ensemble = test_params();
  EXPECT_THROW(serve::Shard(0, cfg, shared_cache(), nullptr),
               std::invalid_argument);
}

}  // namespace
}  // namespace rtad
