// core::env unit tests: the consolidated RTAD_* knob grammar.
//
// The contract under test: unset and empty both mean "use the fallback";
// anything else must parse in full under the knob's grammar or throw
// std::invalid_argument naming the variable — malformed knobs must never
// silently decay to a default.
#include <gtest/gtest.h>

#include <cstdlib>
#include <stdexcept>
#include <string>

#include "rtad/core/env.hpp"

namespace rtad::core::env {
namespace {

constexpr const char* kVar = "RTAD_ENV_TEST_KNOB";

class EnvTest : public ::testing::Test {
 protected:
  void SetUp() override { ASSERT_EQ(unsetenv(kVar), 0); }
  void TearDown() override { ASSERT_EQ(unsetenv(kVar), 0); }
  void set(const char* value) { ASSERT_EQ(setenv(kVar, value, 1), 0); }
};

TEST_F(EnvTest, RawTreatsEmptyAsUnset) {
  EXPECT_FALSE(raw(kVar).has_value());
  set("");
  EXPECT_FALSE(raw(kVar).has_value());
  set("value");
  ASSERT_TRUE(raw(kVar).has_value());
  EXPECT_EQ(*raw(kVar), "value");
}

TEST_F(EnvTest, StringOrFallsBackWhenUnsetOrEmpty) {
  EXPECT_EQ(string_or(kVar, "fb"), "fb");
  set("");
  EXPECT_EQ(string_or(kVar, "fb"), "fb");
  set("/tmp/x.json");
  EXPECT_EQ(string_or(kVar, "fb"), "/tmp/x.json");
}

TEST_F(EnvTest, PositiveOrParsesStrictly) {
  EXPECT_EQ(positive_or(kVar, 7), 7u);
  set("12");
  EXPECT_EQ(positive_or(kVar, 7), 12u);
  for (const char* bad : {"0", "-3", "abc", "3extra", "3.5", " 4"}) {
    set(bad);
    EXPECT_THROW(positive_or(kVar, 7), std::invalid_argument) << bad;
  }
}

TEST_F(EnvTest, U64OrAllowsZeroButNotGarbage) {
  EXPECT_EQ(u64_or(kVar, 5), 5u);
  set("0");
  EXPECT_EQ(u64_or(kVar, 5), 0u);
  set("18446744073709551615");
  EXPECT_EQ(u64_or(kVar, 5), 18446744073709551615ULL);
  for (const char* bad : {"-1", "nope", "1 "}) {
    set(bad);
    EXPECT_THROW(u64_or(kVar, 5), std::invalid_argument) << bad;
  }
}

TEST_F(EnvTest, NumberOrEnforcesRange) {
  EXPECT_EQ(number_or(kVar, 0.5, 0.0, 1.0), 0.5);
  set("0.25");
  EXPECT_EQ(number_or(kVar, 0.5, 0.0, 1.0), 0.25);
  for (const char* bad : {"1.5", "-0.1", "half", "0.2x"}) {
    set(bad);
    EXPECT_THROW(number_or(kVar, 0.5, 0.0, 1.0), std::invalid_argument)
        << bad;
  }
}

TEST_F(EnvTest, ChoiceOrAcceptsExactSpellingsOnly) {
  EXPECT_EQ(choice_or(kVar, {"dense", "event"}, "event"), "event");
  set("dense");
  EXPECT_EQ(choice_or(kVar, {"dense", "event"}, "event"), "dense");
  for (const char* bad : {"evnet", "DENSE", "dense "}) {
    set(bad);
    EXPECT_THROW(choice_or(kVar, {"dense", "event"}, "event"),
                 std::invalid_argument)
        << bad;
  }
}

TEST_F(EnvTest, FlagOrIsZeroOrOne) {
  EXPECT_FALSE(flag_or(kVar, false));
  EXPECT_TRUE(flag_or(kVar, true));
  set("1");
  EXPECT_TRUE(flag_or(kVar, false));
  set("0");
  EXPECT_FALSE(flag_or(kVar, true));
  for (const char* bad : {"true", "yes", "2"}) {
    set(bad);
    EXPECT_THROW(flag_or(kVar, false), std::invalid_argument) << bad;
  }
}

TEST_F(EnvTest, ErrorsNameTheVariableAndTheValue) {
  set("fulL");
  try {
    positive_or(kVar, 1);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find(kVar), std::string::npos) << what;
    EXPECT_NE(what.find("fulL"), std::string::npos) << what;
  }
}

}  // namespace
}  // namespace rtad::core::env
