// Golden-shape test for the parallel experiment layer: a trimmed
// two-benchmark Fig. 8 run asserting the paper's ordinal claims so future
// performance work cannot silently break correctness:
//   - ML-MIAOW (5 trimmed CUs) beats MIAOW (1 CU) on every cell (§IV-C);
//   - ELM latency is nearly constant across benchmarks (Fig. 8 top);
//   - LSTM latency sits well above ELM latency (53.16 vs 13.83 us means);
//   - results come back in submission order with one training/benchmark.
// Benchmarks are chosen at opposite ends of the branch-pressure spectrum:
// 456.hmmer (8% branches) vs 471.omnetpp (26%, the paper's drop-heavy
// case).
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "rtad/core/experiment_runner.hpp"

namespace rtad::core {
namespace {

const std::vector<std::string> kBenchmarks = {"hmmer", "omnetpp"};

workloads::SpecProfile fast_profile(const std::string& name) {
  auto p = workloads::find_profile(name);
  p.syscall_interval_instrs =
      std::min<std::uint64_t>(p.syscall_interval_instrs, 40'000);
  return p;
}

struct Fig8Mini {
  std::vector<DetectionCell> cells;
  std::vector<CellResult> results;
  std::size_t trainings = 0;

  // Cell order per benchmark matches bench/fig8_detection: ELM/MIAOW,
  // ELM/ML-MIAOW, LSTM/MIAOW, LSTM/ML-MIAOW.
  const DetectionResult& at(std::size_t bench, ModelKind model,
                            EngineKind engine) const {
    const std::size_t offset =
        (model == ModelKind::kLstm ? 2 : 0) +
        (engine == EngineKind::kMlMiaow ? 1 : 0);
    return results[bench * 4 + offset].detection;
  }
};

const Fig8Mini& run_fig8_mini() {
  static const Fig8Mini run = [] {
    Fig8Mini out;
    DetectionOptions dopt;
    dopt.attacks = 3;
    for (const auto& name : kBenchmarks) {
      for (const auto model : {ModelKind::kElm, ModelKind::kLstm}) {
        for (const auto engine :
             {EngineKind::kMiaow, EngineKind::kMlMiaow}) {
          out.cells.push_back({name, model, engine, dopt});
        }
      }
    }
    // Paper-fidelity training (the shape claims need the real models);
    // only the syscall cadence is compressed to keep simulated time short.
    auto cache = std::make_shared<TrainedModelCache>(
        TrainingOptions{},
        [](const std::string& name) { return fast_profile(name); });
    ExperimentRunner runner(0, cache);
    out.results = runner.run_detection_matrix(out.cells);
    out.trainings = cache->trainings();
    return out;
  }();
  return run;
}

TEST(ExperimentLayer, ResultsArriveInSubmissionOrder) {
  const auto& run = run_fig8_mini();
  ASSERT_EQ(run.results.size(), run.cells.size());
  for (std::size_t i = 0; i < run.cells.size(); ++i) {
    EXPECT_EQ(run.results[i].detection.benchmark,
              fast_profile(run.cells[i].benchmark).name);
    EXPECT_EQ(run.results[i].detection.model, run.cells[i].model);
    EXPECT_EQ(run.results[i].detection.engine, run.cells[i].engine);
  }
}

TEST(ExperimentLayer, EveryCellDetectsAndOneTrainingPerBenchmark) {
  const auto& run = run_fig8_mini();
  for (const auto& r : run.results) {
    EXPECT_GE(r.detection.detections, 1u)
        << r.detection.benchmark << " " << to_string(r.detection.model)
        << "/" << to_string(r.detection.engine);
    EXPECT_GT(r.detection.inferences, 0u);
  }
  // Four cells per benchmark share one TrainedModels: the cache must have
  // trained exactly once per benchmark, not once per engine.
  EXPECT_EQ(run.trainings, kBenchmarks.size());
}

TEST(ExperimentLayer, MlMiaowBeatsMiaowOnEveryCell) {
  const auto& run = run_fig8_mini();
  for (std::size_t b = 0; b < kBenchmarks.size(); ++b) {
    for (const auto model : {ModelKind::kElm, ModelKind::kLstm}) {
      const auto& slow = run.at(b, model, EngineKind::kMiaow);
      const auto& fast = run.at(b, model, EngineKind::kMlMiaow);
      EXPECT_LT(fast.mean_latency_us, slow.mean_latency_us)
          << kBenchmarks[b] << " " << to_string(model);
    }
  }
}

TEST(ExperimentLayer, ElmLatencyNearlyConstantAcrossBenchmarks) {
  const auto& run = run_fig8_mini();
  for (const auto engine : {EngineKind::kMiaow, EngineKind::kMlMiaow}) {
    const double a =
        run.at(0, ModelKind::kElm, engine).mean_latency_us;
    const double c =
        run.at(1, ModelKind::kElm, engine).mean_latency_us;
    const double hi = std::max(a, c), lo = std::min(a, c);
    ASSERT_GT(lo, 0.0);
    // Fig. 8 top: the ELM bars are flat across the whole suite. Windowed
    // histogram scoring costs the same wherever it runs; allow 50% slack
    // for queueing noise between two very different benchmarks.
    EXPECT_LT(hi / lo, 1.5) << to_string(engine);
  }
}

TEST(ExperimentLayer, LstmSitsAboveElmPerBenchmarkOnMlMiaow) {
  const auto& run = run_fig8_mini();
  for (std::size_t b = 0; b < kBenchmarks.size(); ++b) {
    const double elm =
        run.at(b, ModelKind::kElm, EngineKind::kMlMiaow).mean_latency_us;
    const double lstm =
        run.at(b, ModelKind::kLstm, EngineKind::kMlMiaow).mean_latency_us;
    // Paper means on ML-MIAOW: LSTM 23.98 vs ELM 4.21 us — the recurrent
    // model is strictly heavier per inference. (On saturated MIAOW the
    // ELM's 13x inference load drowns this in queueing, so the claim is
    // only asserted where the engine keeps up.)
    EXPECT_GT(lstm, elm) << kBenchmarks[b];
  }
}

TEST(ExperimentLayer, EtraceFrontendFlagsTheSameAnomalies) {
  // The trace protocol is a wire-encoding choice: swapping the PFT
  // frontend for E-Trace on the same cell must reproduce the identical
  // flagged-anomaly set (attacks, detections, false positives). Latency
  // may move by decode-pipeline jitter; verdicts may not.
  auto cache = std::make_shared<TrainedModelCache>(
      TrainingOptions{},
      [](const std::string& name) { return fast_profile(name); });
  const auto profile = cache->profile("hmmer");
  const auto& models = cache->get("hmmer");

  DetectionOptions dopt;
  dopt.attacks = 3;
  dopt.trace_path.clear();
  dopt.metrics_path.clear();
  dopt.proto = trace::TraceProtocol::kPft;
  const auto pft = measure_detection(profile, models, ModelKind::kLstm,
                                     EngineKind::kMlMiaow, dopt);
  dopt.proto = trace::TraceProtocol::kEtrace;
  const auto etrace = measure_detection(profile, models, ModelKind::kLstm,
                                        EngineKind::kMlMiaow, dopt);

  EXPECT_EQ(pft.trace_protocol, trace::TraceProtocol::kPft);
  EXPECT_EQ(etrace.trace_protocol, trace::TraceProtocol::kEtrace);
  EXPECT_EQ(pft.attacks, etrace.attacks);
  EXPECT_EQ(pft.detections, etrace.detections);
  EXPECT_EQ(pft.false_positives, etrace.false_positives);
  // Both frontends decoded a healthy stream...
  EXPECT_GT(pft.decode_branches, 0u);
  EXPECT_GT(etrace.decode_branches, 0u);
  EXPECT_EQ(pft.decode_bad_packets, 0u);
  EXPECT_EQ(etrace.decode_bad_packets, 0u);
  // ...but over genuinely different encodings.
  EXPECT_NE(pft.trace_bytes_generated, etrace.trace_bytes_generated);
}

TEST(ExperimentLayer, LstmLatencyIsBenchmarkDependent) {
  const auto& run = run_fig8_mini();
  for (const auto engine : {EngineKind::kMiaow, EngineKind::kMlMiaow}) {
    const double light =
        run.at(0, ModelKind::kLstm, engine).mean_latency_us;  // hmmer, 8%
    const double heavy =
        run.at(1, ModelKind::kLstm, engine).mean_latency_us;  // omnetpp, 26%
    // Fig. 8 bottom: LSTM latency tracks branch pressure — branchier
    // programs emit monitored tokens faster, so inferences queue deeper.
    EXPECT_GT(heavy, light) << to_string(engine);
  }
}

}  // namespace
}  // namespace rtad::core
