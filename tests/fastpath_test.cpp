// Fast-backend differential suite: the decode-once fast path must be
// indistinguishable from the cycle-level oracle on every surface callers
// can observe — inference outputs, anomaly flags, launch cycle counts,
// instruction/memory counters, device memory contents, full detection
// results, and the rtad.metrics.v1 export. Every comparison here is exact
// (EXPECT_EQ on bit patterns, never EXPECT_NEAR): the fast backend is a
// different implementation of the same machine, not an approximation.
//
// The suite also proves the fast path actually ran (fast_launches > 0)
// wherever it is expected to: a silent per-launch fallback to the cycle
// interpreter would make every differential check pass vacuously.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "rtad/core/experiment_runner.hpp"
#include "rtad/gpgpu/assembler.hpp"
#include "rtad/gpgpu/gpu.hpp"
#include "rtad/ml/dataset.hpp"
#include "rtad/ml/kernel_compiler.hpp"
#include "rtad/ml/lstm.hpp"
#include "rtad/ml/mlp.hpp"
#include "rtad/sim/rng.hpp"
#include "rtad/workloads/spec_model.hpp"

namespace rtad {
namespace {

using gpgpu::Gpu;
using gpgpu::GpuBackend;
using gpgpu::GpuConfig;
using gpgpu::LaunchConfig;
using gpgpu::Program;

// ---------------------------------------------------------------------------
// Kernel-level harness: run a program (or a model image) on both backends
// and capture everything observable.

struct KernelRun {
  std::vector<std::uint64_t> launch_cycles;  ///< per launch, in order
  std::uint64_t issued = 0;
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t fast_launches = 0;
  std::vector<std::uint32_t> mem;  ///< full device memory at the end
};

void expect_same(const KernelRun& cycle, const KernelRun& fast,
                 bool expect_fast_path) {
  EXPECT_EQ(cycle.launch_cycles, fast.launch_cycles);
  EXPECT_EQ(cycle.issued, fast.issued);
  EXPECT_EQ(cycle.reads, fast.reads);
  EXPECT_EQ(cycle.writes, fast.writes);
  EXPECT_EQ(cycle.mem, fast.mem);
  EXPECT_EQ(cycle.fast_launches, 0u);
  if (expect_fast_path) {
    EXPECT_GT(fast.fast_launches, 0u);
  } else {
    EXPECT_EQ(fast.fast_launches, 0u);
  }
}

KernelRun snapshot(Gpu& gpu) {
  KernelRun r;
  r.issued = gpu.instructions_issued();
  r.fast_launches = gpu.fast_launches();
  r.reads = gpu.memory().reads();
  r.writes = gpu.memory().writes();
  r.mem.resize(gpu.memory().size() / 4);
  gpu.memory().read_block(0, r.mem.data(), r.mem.size());
  return r;
}

/// Run an assembled kernel `launches` times on one backend.
KernelRun run_asm(const Program& prog, GpuBackend backend,
                  std::uint32_t workgroups, std::uint32_t waves,
                  std::uint32_t num_cus, std::uint32_t launches = 1) {
  GpuConfig cfg;
  cfg.num_cus = num_cus;
  cfg.memory_bytes = 1u << 16;
  cfg.backend = backend;
  Gpu gpu(cfg);
  // Deterministic nonzero contents for anything the kernel loads.
  for (std::uint32_t a = 0x1000; a < 0x1400; a += 4) {
    gpu.memory().write32(a, a * 2654435761u);
  }
  LaunchConfig launch;
  launch.program = &prog;
  launch.workgroups = workgroups;
  launch.waves_per_group = waves;
  std::vector<std::uint64_t> cycles;
  for (std::uint32_t i = 0; i < launches; ++i) {
    gpu.launch(launch);
    gpu.run_to_completion();
    cycles.push_back(gpu.last_launch_cycles());
  }
  KernelRun r = snapshot(gpu);
  r.launch_cycles = std::move(cycles);
  return r;
}

void expect_backend_equivalent(const std::string& src,
                               std::uint32_t workgroups = 1,
                               std::uint32_t waves = 1,
                               std::uint32_t num_cus = 1,
                               std::uint32_t launches = 1) {
  const auto prog = gpgpu::assemble(src);
  const auto cycle =
      run_asm(prog, GpuBackend::kCycle, workgroups, waves, num_cus, launches);
  const auto fast =
      run_asm(prog, GpuBackend::kFast, workgroups, waves, num_cus, launches);
  expect_same(cycle, fast, /*expect_fast_path=*/true);
}

// ---------------------------------------------------------------------------
// Trained-model differential: every model kind through its compiled kernels
// on both backends, on both engine shapes (1 CU and 5 CUs).

struct InferenceTrace {
  std::vector<std::uint32_t> score_bits;  ///< per inference, bit-exact
  std::vector<bool> anomalies;
  KernelRun run;
};

InferenceTrace run_image(const ml::ModelImage& image, GpuBackend backend,
                         std::uint32_t num_cus,
                         const std::vector<std::vector<std::uint32_t>>& inputs) {
  GpuConfig cfg;
  cfg.num_cus = num_cus;
  cfg.backend = backend;
  Gpu gpu(cfg);
  ml::load_image(gpu, image);
  InferenceTrace t;
  for (const auto& payload : inputs) {
    const auto res = ml::run_inference_offline(gpu, image, payload);
    std::uint32_t bits;
    std::memcpy(&bits, &res.score, 4);
    t.score_bits.push_back(bits);
    t.anomalies.push_back(res.anomaly);
    t.run.launch_cycles.push_back(gpu.last_launch_cycles());
  }
  const KernelRun counters = snapshot(gpu);
  t.run.issued = counters.issued;
  t.run.reads = counters.reads;
  t.run.writes = counters.writes;
  t.run.fast_launches = counters.fast_launches;
  t.run.mem = counters.mem;
  return t;
}

void expect_image_equivalent(
    const ml::ModelImage& image,
    const std::vector<std::vector<std::uint32_t>>& inputs) {
  for (const std::uint32_t num_cus : {1u, 5u}) {
    const auto cycle = run_image(image, GpuBackend::kCycle, num_cus, inputs);
    const auto fast = run_image(image, GpuBackend::kFast, num_cus, inputs);
    EXPECT_EQ(cycle.score_bits, fast.score_bits) << image.name;
    EXPECT_EQ(cycle.anomalies, fast.anomalies) << image.name;
    expect_same(cycle.run, fast.run, /*expect_fast_path=*/true);
  }
}

std::vector<std::uint32_t> counts_payload(const ml::Vector& x,
                                          std::uint32_t window) {
  std::vector<std::uint32_t> payload;
  payload.reserve(x.size());
  for (const float v : x) {
    payload.push_back(static_cast<std::uint32_t>(
        std::lround(v * static_cast<float>(window))));
  }
  return payload;
}

TEST(FastPathModels, ElmKernelsMatchCycleBackend) {
  const auto& p = workloads::find_profile("gcc");
  ml::DatasetBuilder builder(p, 23);
  auto ds = builder.collect_elm(120);
  ml::ElmConfig cfg;
  cfg.input_dim = builder.config().elm_vocab;
  cfg.hidden = 128;
  ml::Elm elm(cfg);
  std::vector<ml::Vector> train(ds.windows.begin(), ds.windows.begin() + 100);
  elm.train(train);

  std::vector<float> scores;
  for (const auto& w : ds.windows) scores.push_back(elm.score(w));
  const auto threshold = ml::Threshold::calibrate(scores, 95.0, 1.2f);
  const auto image =
      ml::compile_elm(elm, threshold, builder.config().elm_window);

  std::vector<std::vector<std::uint32_t>> inputs;
  for (std::size_t i = 100; i < 112; ++i) {
    inputs.push_back(counts_payload(ds.windows[i], builder.config().elm_window));
  }
  // One uniform histogram far from training so the anomaly path runs too.
  inputs.emplace_back(builder.config().elm_vocab,
                      builder.config().elm_window / builder.config().elm_vocab);
  expect_image_equivalent(image, inputs);
}

TEST(FastPathModels, MlpKernelsMatchCycleBackend) {
  const auto& p = workloads::find_profile("mcf");
  ml::DatasetBuilder builder(p, 33);
  auto ds = builder.collect_elm(120);
  ml::MlpConfig cfg;
  cfg.input_dim = builder.config().elm_vocab;
  cfg.hidden = 64;
  cfg.epochs = 15;
  ml::Mlp mlp(cfg);
  std::vector<ml::Vector> train(ds.windows.begin(), ds.windows.begin() + 100);
  mlp.train(train);
  const auto image =
      ml::compile_mlp(mlp, ml::Threshold(1e9f), builder.config().elm_window);

  std::vector<std::vector<std::uint32_t>> inputs;
  for (std::size_t i = 100; i < 112; ++i) {
    inputs.push_back(counts_payload(ds.windows[i], builder.config().elm_window));
  }
  expect_image_equivalent(image, inputs);
}

TEST(FastPathModels, LstmKernelsMatchCycleBackend) {
  ml::LstmConfig cfg;  // vocab 64, hidden 64: device shape
  cfg.epochs = 2;
  ml::Lstm lstm(cfg);
  std::vector<std::uint32_t> tokens;
  sim::Xoshiro256 rng(31);
  for (int i = 0; i < 1500; ++i) {
    tokens.push_back(rng.chance(0.1)
                         ? static_cast<std::uint32_t>(rng.uniform_below(64))
                         : static_cast<std::uint32_t>(i % 12));
  }
  lstm.train(tokens);
  const auto image = ml::compile_lstm(lstm, ml::Threshold(1e9f), 0.0f);

  // A stateful sequence: each step reads the recurrent state the previous
  // launch left in device memory, so any divergence compounds and the
  // digest-equivalent score vector would catch it immediately.
  std::vector<std::vector<std::uint32_t>> inputs;
  for (int i = 0; i < 24; ++i) {
    inputs.push_back({static_cast<std::uint32_t>(i % 12)});
  }
  inputs.push_back({63});  // out-of-pattern token
  expect_image_equivalent(image, inputs);
}

// ---------------------------------------------------------------------------
// Block-boundary coverage: shapes that stress the decoder's basic-block
// slicing — back-to-back branches, branch targets that are themselves
// branches, single-instruction blocks, divergent EXEC masks, barriers.

constexpr const char* kLane0Epilogue = R"(
  v_cmp_lt_i32 vcc, v0, 1
  s_and_b64 exec, exec, vcc
  s_mov_b32 s20, 0x4000
  v_mov_b32 v11, 0
  v_mov_b32 v10, s5
  global_store_dword v10, v11, s20
  s_endpgm
)";

TEST(FastPathBlocks, BackToBackBranches) {
  // Both a fallthrough into another branch and a branch target that is
  // itself a branch: every one of these is its own single-instruction
  // block, and the decoder must mark all the leaders.
  expect_backend_equivalent(std::string(R"(
  s_mov_b32 s4, 3
  s_mov_b32 s5, 0
  s_cmp_lt_i32 s4, 10
  s_cbranch_scc1 a
  s_branch b
a:
  s_cbranch_scc1 b
  s_branch c
b:
  s_add_i32 s5, s5, 1
c:
  s_add_i32 s5, s5, 16
)") + kLane0Epilogue);
}

TEST(FastPathBlocks, SingleInstructionLoopBody) {
  // The loop body and the loop latch compress to one- and two-instruction
  // blocks; the backward branch re-enters a block mid-program.
  expect_backend_equivalent(std::string(R"(
  s_mov_b32 s5, 0
  s_mov_b32 s6, 0
top:
  s_add_i32 s5, s5, 7
  s_add_i32 s6, s6, 1
  s_cmp_lt_i32 s6, 9
  s_cbranch_scc1 top
)") + kLane0Epilogue);
}

TEST(FastPathBlocks, DivergentExecMasks) {
  // Narrow EXEC per-lane, run a divergent region, skip a dead region via
  // execz, then restore. Lanes must re-converge with per-lane results.
  expect_backend_equivalent(R"(
  s_mov_b64 s8, exec
  v_mov_b32 v4, 0
  v_cmp_lt_i32 vcc, v0, 40
  s_and_b64 exec, exec, vcc
  v_add_i32 v4, v4, 5
  v_cmp_gt_i32 vcc, v0, 1000
  s_and_b64 exec, exec, vcc
  s_cbranch_execz dead
  v_add_i32 v4, v4, 100
dead:
  s_mov_b64 exec, s8
  v_lshlrev_b32 v2, 2, v0
  s_mov_b32 s20, 0x4000
  global_store_dword v4, v2, s20
  s_endpgm
)");
}

TEST(FastPathBlocks, BarrierMultiWaveAccumulation) {
  // Four waves accumulate into LDS across two barriers; the fast backend
  // must replay the CU's round-robin issue and barrier release exactly,
  // including the launch cycle count.
  expect_backend_equivalent(R"(
.lds 64
  v_mov_b32 v2, 0
  v_mov_b32 v3, 1
  s_cmp_lg_i32 s2, 0
  s_cbranch_scc1 skipinit
  ds_write_b32 v2, v2
skipinit:
  s_barrier
  ds_add_u32 v3, v2
  s_barrier
  v_cmp_lt_i32 vcc, v1, 1
  s_and_b64 exec, exec, vcc
  ds_read_b32 v10, v2
  s_mov_b32 s20, 0x4000
  v_mov_b32 v11, 0
  global_store_dword v10, v11, s20
  s_endpgm
)", /*workgroups=*/1, /*waves=*/4);
}

TEST(FastPathBlocks, MultiWorkgroupDispatchOnMultipleCus) {
  // Five workgroups over two CUs: the fast backend replays the dispatcher
  // (latency gaps, busy CUs, idle-jump) analytically; launch cycle counts
  // and per-workgroup output slots must match the oracle exactly.
  expect_backend_equivalent(R"(
  s_lshl_b32 s4, s1, 8
  s_add_i32 s4, s4, 0x4000
  v_lshlrev_b32 v2, 2, v0
  v_mov_b32 v3, s1
  v_add_i32 v3, v3, v0
  global_store_dword v3, v2, s4
  s_endpgm
)", /*workgroups=*/5, /*waves=*/1, /*num_cus=*/2);
}

TEST(FastPathBlocks, RepeatLaunchesHitDecodeCache) {
  // Same program launched repeatedly: every launch must take the fast path
  // (cache hit) and stay cycle-exact.
  expect_backend_equivalent(std::string(R"(
  s_mov_b32 s5, 0
  s_mov_b32 s6, 0
again:
  s_add_i32 s5, s5, 3
  s_add_i32 s6, s6, 1
  s_cmp_lt_i32 s6, 5
  s_cbranch_scc1 again
)") + kLane0Epilogue,
                            /*workgroups=*/1, /*waves=*/1, /*num_cus=*/1,
                            /*launches=*/4);
}

TEST(FastPathFallback, CoverageCollectionForcesCyclePath) {
  // Coverage is a cycle-interpreter product; under RTAD_BACKEND=fast the
  // launch must silently take the cycle path and produce identical
  // coverage, with fast_launches pinned at 0.
  const auto prog = gpgpu::assemble(std::string(R"(
  s_mov_b32 s4, 2
  s_mov_b32 s5, 40
  s_add_i32 s5, s5, s4
)") + kLane0Epilogue);
  std::vector<std::uint64_t> coverage[2];
  KernelRun runs[2];
  const GpuBackend backends[2] = {GpuBackend::kCycle, GpuBackend::kFast};
  for (int i = 0; i < 2; ++i) {
    GpuConfig cfg;
    cfg.memory_bytes = 1u << 16;
    cfg.backend = backends[i];
    Gpu gpu(cfg);
    gpu.set_coverage_enabled(true);
    LaunchConfig launch;
    launch.program = &prog;
    gpu.launch(launch);
    gpu.run_to_completion();
    runs[i] = snapshot(gpu);
    runs[i].launch_cycles.push_back(gpu.last_launch_cycles());
    coverage[i] = gpu.coverage();
  }
  expect_same(runs[0], runs[1], /*expect_fast_path=*/false);
  EXPECT_EQ(coverage[0], coverage[1]);
}

TEST(FastPathFallback, FallThroughEndRaisesCanonicalError) {
  // A program whose last path falls off the end is outside the fast subset;
  // the fast backend must fall back and raise the cycle backend's error.
  Program prog;
  prog.name = "falls_off";
  gpgpu::Instruction mov;
  mov.op = gpgpu::Opcode::S_MOV_B32;
  mov.dst = gpgpu::Operand::sgpr(4);
  mov.src0 = gpgpu::Operand::lit(1);
  prog.code.push_back(mov);
  prog.num_vgprs = 4;

  std::string messages[2];
  const GpuBackend backends[2] = {GpuBackend::kCycle, GpuBackend::kFast};
  for (int i = 0; i < 2; ++i) {
    GpuConfig cfg;
    cfg.backend = backends[i];
    Gpu gpu(cfg);
    LaunchConfig launch;
    launch.program = &prog;
    gpu.launch(launch);
    try {
      gpu.run_to_completion();
      FAIL() << "expected PC-past-end error";
    } catch (const std::runtime_error& e) {
      messages[i] = e.what();
    }
    EXPECT_EQ(gpu.fast_launches(), 0u);
  }
  EXPECT_NE(messages[0].find("PC past end"), std::string::npos);
  EXPECT_EQ(messages[0], messages[1]);
}

// ---------------------------------------------------------------------------
// Full-pipeline differential: complete detection sessions across backend ×
// scheduler, comparing every DetectionResult field and the byte-exact
// rtad.metrics.v1 export.

workloads::SpecProfile fast_profile(const std::string& name) {
  auto p = workloads::find_profile(name);
  p.syscall_interval_instrs = 40'000;  // keep sim time short
  return p;
}

std::shared_ptr<core::TrainedModelCache> shared_cache() {
  core::TrainingOptions opt;
  opt.lstm_train_tokens = 2'500;
  opt.lstm_val_tokens = 700;
  opt.elm_train_windows = 250;
  opt.elm_val_windows = 80;
  opt.lstm.epochs = 2;
  static const auto cache = std::make_shared<core::TrainedModelCache>(
      opt, [](const std::string& name) { return fast_profile(name); });
  return cache;
}

core::DetectionResult run_session(core::ModelKind model,
                                  core::EngineKind engine, GpuBackend backend,
                                  sim::SchedMode sched,
                                  const std::string& metrics_path) {
  auto cache = shared_cache();
  core::DetectionOptions dopt;
  dopt.attacks = 2;
  dopt.sched = sched;
  dopt.backend = backend;
  dopt.trace_path.clear();
  dopt.metrics_path = metrics_path;
  return core::measure_detection(cache->profile("astar"),
                                 cache->get("astar"), model, engine, dopt);
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

void expect_sessions_identical(const core::DetectionResult& a,
                               const core::DetectionResult& b) {
  EXPECT_EQ(a.attacks, b.attacks);
  EXPECT_EQ(a.detections, b.detections);
  EXPECT_EQ(a.mean_latency_us, b.mean_latency_us);
  EXPECT_EQ(a.min_latency_us, b.min_latency_us);
  EXPECT_EQ(a.max_latency_us, b.max_latency_us);
  EXPECT_EQ(a.fifo_drops, b.fifo_drops);
  EXPECT_EQ(a.false_positives, b.false_positives);
  EXPECT_EQ(a.inferences, b.inferences);
  EXPECT_EQ(a.score_digest, b.score_digest);
  EXPECT_EQ(a.simulated_ps, b.simulated_ps);
  EXPECT_EQ(a.irqs_lost, b.irqs_lost);
  EXPECT_EQ(a.mcm_recoveries, b.mcm_recoveries);
}

TEST(FastPathSessions, DetectionAndMetricsIdenticalAcrossBackends) {
  const struct {
    core::ModelKind model;
    core::EngineKind engine;
  } cells[] = {
      {core::ModelKind::kElm, core::EngineKind::kMlMiaow},
      {core::ModelKind::kLstm, core::EngineKind::kMiaow},
      {core::ModelKind::kLstm, core::EngineKind::kMlMiaow},
  };
  int cell_index = 0;
  for (const auto& cell : cells) {
    for (const auto sched :
         {sim::SchedMode::kDense, sim::SchedMode::kEventDriven}) {
      const std::string tag = testing::TempDir() + "fastpath_metrics_" +
                              std::to_string(cell_index) + "_" +
                              (sched == sim::SchedMode::kDense ? "d" : "e");
      const auto cycle = run_session(cell.model, cell.engine,
                                     GpuBackend::kCycle, sched, tag + "c.json");
      const auto fast = run_session(cell.model, cell.engine, GpuBackend::kFast,
                                    sched, tag + "f.json");
      expect_sessions_identical(cycle, fast);
      // The fast path must actually have run — and only under kFast.
      EXPECT_EQ(cycle.gpu_fast_launches, 0u);
      EXPECT_GT(fast.gpu_fast_launches, 0u);
      // Byte-exact machine-readable export.
      const std::string cycle_json = slurp(tag + "c.json");
      const std::string fast_json = slurp(tag + "f.json");
      ASSERT_FALSE(cycle_json.empty());
      EXPECT_EQ(cycle_json, fast_json);
    }
    ++cell_index;
  }
}

}  // namespace
}  // namespace rtad
