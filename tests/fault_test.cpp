// Fault layer tests: plan parsing, injector determinism and stream
// independence, FIFO drop policies, PFT decoder resync round-trips, TPIU
// byte corruption, interconnect fault penalties, and MCM watchdog/IRQ-loss
// recovery.
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <vector>

#include "rtad/bus/interconnect.hpp"
#include "rtad/bus/memory.hpp"
#include "rtad/coresight/pft_encoder.hpp"
#include "rtad/coresight/tpiu.hpp"
#include "rtad/fault/fault_injector.hpp"
#include "rtad/igm/pft_decoder.hpp"
#include "rtad/mcm/mcm.hpp"
#include "rtad/ml/kernels.hpp"
#include "rtad/sim/fifo.hpp"

namespace rtad::fault {
namespace {

// ------------------------------------------------------------ FaultPlan

TEST(FaultPlan, ParsesRatesAndParameters) {
  const auto plan = FaultPlan::parse(
      "trace.bit_flip=0.25,mcm.done_lost=1,bus.error=0,fifo.squeeze=4,"
      "igm.drop_resync=true,mcm.watchdog=5000,seed=123");
  EXPECT_DOUBLE_EQ(plan.rate(FaultSite::kTraceBitFlip), 0.25);
  EXPECT_DOUBLE_EQ(plan.rate(FaultSite::kMcmDoneLost), 1.0);
  EXPECT_DOUBLE_EQ(plan.rate(FaultSite::kBusError), 0.0);
  EXPECT_EQ(plan.fifo_squeeze, 4u);
  EXPECT_TRUE(plan.igm_drop_resync);
  EXPECT_EQ(plan.watchdog_cycles, 5000u);
  EXPECT_EQ(plan.seed, 123u);
  EXPECT_TRUE(plan.any());
}

TEST(FaultPlan, EmptyAndAllZeroPlansAreInert) {
  EXPECT_FALSE(FaultPlan{}.any());
  EXPECT_FALSE(FaultPlan::parse("").any());
  EXPECT_FALSE(FaultPlan::parse("trace.drop=0,seed=9").any());
  // Structural knobs alone count as "does something".
  EXPECT_TRUE(FaultPlan::parse("fifo.squeeze=2").any());
  EXPECT_TRUE(FaultPlan::parse("mcm.drop_oldest=1").any());
}

TEST(FaultPlan, RejectsMalformedSpecs) {
  EXPECT_THROW(FaultPlan::parse("trace.bit_flip=1.5"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("trace.bit_flip=-0.1"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("trace.bit_flip=abc"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("no_such_key=1"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("trace.bit_flip"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("igm.drop_resync=maybe"),
               std::invalid_argument);
}

TEST(FaultPlan, ReadsEnvironment) {
  ::setenv("RTAD_FAULTS", "trace.drop=0.5", 1);
  const auto plan = plan_from_env();
  ASSERT_TRUE(plan.has_value());
  EXPECT_DOUBLE_EQ(plan->rate(FaultSite::kTraceDropByte), 0.5);
  ::setenv("RTAD_FAULTS", "", 1);
  EXPECT_FALSE(plan_from_env().has_value());
  ::unsetenv("RTAD_FAULTS");
  EXPECT_FALSE(plan_from_env().has_value());
}

// -------------------------------------------------------- FaultInjector

std::vector<bool> fire_sequence(FaultInjector& fi, FaultSite site, int n) {
  std::vector<bool> seq;
  seq.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) seq.push_back(fi.fire(site));
  return seq;
}

TEST(FaultInjector, SamePlanAndSaltReplaysIdentically) {
  FaultPlan plan;
  plan.set_rate(FaultSite::kTraceBitFlip, 0.3);
  FaultInjector a(plan, 7);
  FaultInjector b(plan, 7);
  EXPECT_EQ(fire_sequence(a, FaultSite::kTraceBitFlip, 2000),
            fire_sequence(b, FaultSite::kTraceBitFlip, 2000));
  EXPECT_EQ(a.fires(FaultSite::kTraceBitFlip),
            b.fires(FaultSite::kTraceBitFlip));
  EXPECT_GT(a.fires(FaultSite::kTraceBitFlip), 0u);
  EXPECT_EQ(a.decisions(FaultSite::kTraceBitFlip), 2000u);
}

TEST(FaultInjector, DifferentSaltDecorrelates) {
  FaultPlan plan;
  plan.set_rate(FaultSite::kTraceBitFlip, 0.5);
  FaultInjector a(plan, 1);
  FaultInjector b(plan, 2);
  EXPECT_NE(fire_sequence(a, FaultSite::kTraceBitFlip, 2000),
            fire_sequence(b, FaultSite::kTraceBitFlip, 2000));
}

TEST(FaultInjector, SiteStreamsAreIndependent) {
  FaultPlan plan;
  plan.set_rate(FaultSite::kTraceBitFlip, 0.3);
  plan.set_rate(FaultSite::kBusError, 0.9);
  FaultInjector solo(plan, 5);
  FaultInjector interleaved(plan, 5);
  std::vector<bool> solo_seq, inter_seq;
  for (int i = 0; i < 1000; ++i) {
    solo_seq.push_back(solo.fire(FaultSite::kTraceBitFlip));
    // Draws on another site must not shift this site's sequence.
    inter_seq.push_back(interleaved.fire(FaultSite::kTraceBitFlip));
    interleaved.fire(FaultSite::kBusError);
    interleaved.fire(FaultSite::kBusError);
  }
  EXPECT_EQ(solo_seq, inter_seq);
}

TEST(FaultInjector, ZeroRateSiteNeverFires) {
  FaultPlan plan;  // all rates zero
  FaultInjector fi(plan, 1);
  for (int i = 0; i < 100; ++i) EXPECT_FALSE(fi.fire(FaultSite::kIrqLost));
  EXPECT_EQ(fi.decisions(FaultSite::kIrqLost), 100u);
  EXPECT_EQ(fi.fires(FaultSite::kIrqLost), 0u);
  EXPECT_EQ(fi.total_fires(), 0u);
}

// ----------------------------------------------------- Fifo drop policy

TEST(FifoDropPolicy, DropNewDiscardsTheNewcomer) {
  sim::Fifo<int> fifo(2);  // kDropNew default
  EXPECT_TRUE(fifo.try_push(1));
  EXPECT_TRUE(fifo.try_push(2));
  EXPECT_FALSE(fifo.try_push(3));
  EXPECT_EQ(fifo.overflows(), 1u);
  EXPECT_EQ(fifo.pushes(), 3u);
  EXPECT_EQ(*fifo.pop(), 1);
  EXPECT_EQ(*fifo.pop(), 2);
  EXPECT_FALSE(fifo.pop().has_value());
}

TEST(FifoDropPolicy, DropOldestEvictsTheHead) {
  sim::Fifo<int> fifo(2, sim::DropPolicy::kDropOldest);
  fifo.try_push(1);
  fifo.try_push(2);
  EXPECT_TRUE(fifo.try_push(3));  // accepted; 1 is sacrificed
  EXPECT_EQ(fifo.overflows(), 1u);
  EXPECT_EQ(fifo.size(), 2u);
  EXPECT_EQ(*fifo.pop(), 2);
  EXPECT_EQ(*fifo.pop(), 3);
}

TEST(FifoDropPolicy, StrictPushHonorsDropOldest) {
  // Regression: push() used to throw on a full FIFO regardless of policy,
  // so a kDropOldest FIFO could never be strict-pushed past capacity even
  // though its whole point is to accept new data by evicting the head.
  sim::Fifo<int> fifo(2, sim::DropPolicy::kDropOldest);
  fifo.push(1);
  fifo.push(2);
  fifo.push(3);  // must not throw: 1 is evicted instead
  EXPECT_EQ(fifo.overflows(), 1u);
  EXPECT_EQ(fifo.size(), 2u);
  EXPECT_EQ(*fifo.pop(), 2);
  EXPECT_EQ(*fifo.pop(), 3);
}

TEST(FifoDropPolicy, StrictPushStillThrowsUnderDropNew) {
  sim::Fifo<int> fifo(1);  // kDropNew default
  fifo.push(1);
  EXPECT_THROW(fifo.push(2), std::runtime_error);
  // The overflow throw does not corrupt the queue.
  EXPECT_EQ(fifo.size(), 1u);
  EXPECT_EQ(*fifo.pop(), 1);
}

TEST(FifoDropPolicy, RvaluePushMovesTheItem) {
  sim::Fifo<std::unique_ptr<int>> fifo(1);
  EXPECT_TRUE(fifo.try_push(std::make_unique<int>(42)));
  EXPECT_FALSE(fifo.try_push(std::make_unique<int>(43)));  // dropped new
  auto out = fifo.pop();
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(**out, 42);
}

TEST(FifoDropPolicy, WakeHookFiresOnlyWhenDataIsDelivered) {
  int wakes = 0;
  sim::Fifo<int> drop_new(1);
  drop_new.set_wake_hook([&] { ++wakes; });
  drop_new.try_push(1);
  EXPECT_EQ(wakes, 1);
  drop_new.try_push(2);  // dropped: nothing changed, nobody woken
  EXPECT_EQ(wakes, 1);

  wakes = 0;
  sim::Fifo<int> drop_old(1, sim::DropPolicy::kDropOldest);
  drop_old.set_wake_hook([&] { ++wakes; });
  drop_old.try_push(1);
  drop_old.try_push(2);  // head evicted, new data delivered: hook fires
  EXPECT_EQ(wakes, 2);
}

TEST(FifoDropPolicy, ResetStatsKeepsWatermarkAtOccupancy) {
  sim::Fifo<int> fifo(8);
  for (int i = 0; i < 5; ++i) fifo.try_push(i);
  fifo.pop();
  fifo.pop();
  EXPECT_EQ(fifo.high_watermark(), 5u);
  fifo.reset_stats();
  EXPECT_EQ(fifo.pushes(), 0u);
  EXPECT_EQ(fifo.overflows(), 0u);
  // A window opened on a non-empty FIFO must not report less than what is
  // already buffered.
  EXPECT_EQ(fifo.high_watermark(), 3u);
}

// ------------------------------------------------- PFT decoder recovery

coresight::TraceByte tb(std::uint8_t value) {
  return coresight::TraceByte{value, 1000, 0, false};
}

/// Feed encoder-produced bytes and count decoded branches.
std::size_t feed_all(igm::PftStreamDecoder& dec,
                     const std::vector<std::uint8_t>& bytes) {
  std::size_t decoded = 0;
  for (const auto b : bytes) {
    if (dec.feed(tb(b))) ++decoded;
  }
  return decoded;
}

TEST(PftDecoderRecovery, MalformedPacketCountsAndResyncs) {
  igm::PftStreamDecoder dec;
  coresight::PftEncoder enc;
  std::vector<std::uint8_t> bytes;
  enc.emit_sync(0, 1, bytes);
  EXPECT_EQ(feed_all(dec, bytes), 0u);
  EXPECT_TRUE(dec.synced());

  // A branch packet can carry at most 4 continuation bytes after its
  // header; a 5th payload byte with the continuation bit still set is
  // provably corruption (a clean encoder always clears it on the last
  // byte).
  feed_all(dec, {0x81, 0x80, 0x80, 0x80, 0x80, 0x80});
  EXPECT_GE(dec.bad_packets(), 1u);
  EXPECT_GE(dec.resyncs(), 1u);
  EXPECT_FALSE(dec.synced());
}

TEST(PftDecoderRecovery, ResyncRoundTripRecoversDecoding) {
  igm::PftStreamDecoder dec;
  coresight::PftEncoder enc;
  std::vector<std::uint8_t> bytes;
  enc.emit_sync(0, 1, bytes);

  cpu::BranchEvent ev;
  ev.kind = cpu::BranchKind::kCall;
  ev.taken = true;
  ev.target = 0x5000;
  enc.encode(ev, bytes);
  EXPECT_EQ(feed_all(dec, bytes), 1u);

  // Corrupt the stream mid-packet, then resync via a fresh preamble.
  feed_all(dec, {0x81, 0x80, 0x80, 0x80, 0x80, 0x80});
  ASSERT_FALSE(dec.synced());
  const auto bad_before = dec.bad_packets();

  enc.reset();
  std::vector<std::uint8_t> recovery;
  enc.emit_sync(0, 1, recovery);
  ev.target = 0x6000;
  enc.encode(ev, recovery);
  EXPECT_EQ(feed_all(dec, recovery), 1u);
  EXPECT_TRUE(dec.synced());
  EXPECT_EQ(dec.bad_packets(), bad_before);  // clean stream adds none
  EXPECT_EQ(dec.last_address(), 0x6000u);
}

TEST(PftDecoderRecovery, GarbageStreamNeverThrows) {
  igm::PftStreamDecoder dec;
  sim::Xoshiro256 rng(99);
  for (int i = 0; i < 50'000; ++i) {
    EXPECT_NO_THROW(
        dec.feed(tb(static_cast<std::uint8_t>(rng.uniform_below(256)))));
  }
}

// -------------------------------------------------- TPIU trace corruption

struct TpiuRig {
  explicit TpiuRig(FaultPlan plan)
      : source(256), tpiu(source), faults(plan, 11) {
    tpiu.set_fault_injector(&faults);
  }

  void push_bytes(int n) {
    for (int i = 0; i < n; ++i) {
      source.push(tb(static_cast<std::uint8_t>(i + 1)));
    }
  }

  std::vector<std::uint8_t> drain(int ticks = 200) {
    std::vector<std::uint8_t> out;
    for (int t = 0; t < ticks; ++t) {
      tpiu.tick();
      while (auto w = tpiu.port().pop()) {
        for (int i = 0; i < w->count; ++i) {
          out.push_back(w->bytes[static_cast<std::size_t>(i)].value);
        }
      }
    }
    return out;
  }

  sim::Fifo<coresight::TraceByte> source;
  coresight::Tpiu tpiu;
  FaultInjector faults;
};

TEST(TpiuFaults, BitFlipDamagesEveryByteAtRateOne) {
  FaultPlan plan;
  plan.set_rate(FaultSite::kTraceBitFlip, 1.0);
  TpiuRig rig(plan);
  rig.push_bytes(16);
  const auto out = rig.drain();
  ASSERT_EQ(out.size(), 16u);
  EXPECT_EQ(rig.tpiu.bits_flipped(), 16u);
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_NE(out[i], static_cast<std::uint8_t>(i + 1));  // exactly one bit off
  }
}

TEST(TpiuFaults, DropRateOneSwallowsTheStream) {
  FaultPlan plan;
  plan.set_rate(FaultSite::kTraceDropByte, 1.0);
  TpiuRig rig(plan);
  rig.push_bytes(16);
  EXPECT_TRUE(rig.drain().empty());
  EXPECT_EQ(rig.tpiu.bytes_dropped(), 16u);
  EXPECT_EQ(rig.tpiu.words_emitted(), 0u);
}

TEST(TpiuFaults, DuplicationDoublesTheStream) {
  FaultPlan plan;
  plan.set_rate(FaultSite::kTraceDupByte, 1.0);
  TpiuRig rig(plan);
  rig.push_bytes(8);
  const auto out = rig.drain();
  ASSERT_EQ(out.size(), 16u);
  EXPECT_EQ(rig.tpiu.bytes_duplicated(), 8u);
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(out[2 * i], out[2 * i + 1]);  // each byte followed by its twin
  }
}

TEST(TpiuFaults, TruncationWindowSwallowsRuns) {
  FaultPlan plan;
  plan.set_rate(FaultSite::kTraceTruncate, 1.0);
  plan.truncate_bytes = 8;
  TpiuRig rig(plan);
  rig.push_bytes(16);
  EXPECT_TRUE(rig.drain().empty());
  EXPECT_EQ(rig.tpiu.bytes_truncated(), 16u);
}

TEST(TpiuFaults, CountersStayZeroWithoutInjector) {
  sim::Fifo<coresight::TraceByte> source(64);
  coresight::Tpiu tpiu(source);
  for (int i = 0; i < 8; ++i) source.push(tb(0x42));
  for (int t = 0; t < 20; ++t) tpiu.tick();
  EXPECT_EQ(tpiu.corrupted_bytes(), 0u);
  EXPECT_GT(tpiu.words_emitted(), 0u);
}

// ---------------------------------------------- Interconnect penalties

TEST(InterconnectFaults, ErrorRetriesCostCyclesButPreserveData) {
  bus::Memory mem(1024);
  bus::Interconnect clean;
  clean.map("mem", 0, 1024, mem);
  const std::uint32_t clean_cost = clean.write32(0, 1);

  FaultPlan plan;
  plan.set_rate(FaultSite::kBusError, 1.0);
  FaultInjector fi(plan, 3);
  bus::Interconnect faulty;
  faulty.map("mem", 0, 1024, mem);
  faulty.set_fault_injector(&fi);

  // The calibrated return cost is unchanged; the retry surfaces only
  // through the pending penalty and the error counter.
  EXPECT_EQ(faulty.write32(4, 0xBEEF), clean_cost);
  std::uint32_t readback = 0;
  faulty.read32(4, readback);
  EXPECT_EQ(readback, 0xBEEFu);
  EXPECT_EQ(faulty.fault_errors(), 2u);  // write + read both errored
  EXPECT_GT(faulty.consume_fault_penalty(), 0u);
  EXPECT_EQ(faulty.consume_fault_penalty(), 0u);  // consumed
  EXPECT_GT(faulty.fault_cycles(), 0u);           // lifetime total remains
}

TEST(InterconnectFaults, DelayAddsConfiguredCycles) {
  bus::Memory mem(64);
  FaultPlan plan;
  plan.set_rate(FaultSite::kBusDelay, 1.0);
  plan.bus_delay_cycles = 13;
  FaultInjector fi(plan, 3);
  bus::Interconnect bus;
  bus.map("mem", 0, 64, mem);
  bus.set_fault_injector(&fi);
  bus.write32(0, 7);
  EXPECT_EQ(bus.consume_fault_penalty(), 13u);
}

// ------------------------------------------- MCM watchdog / IRQ recovery

using gpgpu::assemble;

/// Trivial model: copies the input token to the score, flags anomaly when
/// token > 100 (same toy as mcm_test).
ml::ModelImage toy_image() {
  ml::ModelImage image;
  image.name = "toy";
  image.input_addr = 0x40;
  image.input_words = 1;
  image.result_addr = 0x0;
  ml::KernelStep step;
  step.program = assemble(R"(
  s_load_dword s4, s0, 0      ; input addr
  s_load_dword s5, s0, 4      ; result addr
  s_waitcnt 0
  s_load_dword s6, s4, 0      ; token
  s_waitcnt 0
  v_cmp_lt_i32 vcc, v0, 1
  s_and_b64 exec, exec, vcc
  v_mov_b32 v2, s6
  v_cvt_f32_u32 v2, v2
  v_mov_b32 v3, 0
  global_store_dword v2, v3, s5, 4
  v_mov_b32 v4, 100.0
  v_cmp_gt_f32 vcc, v2, v4
  v_cndmask_b32 v5, 0, 1
  global_store_dword v5, v3, s5
  s_endpgm
)");
  step.workgroups = 1;
  step.kernarg_addr = 0x200;
  image.steps.push_back(std::move(step));
  image.init_blocks.emplace_back(
      0x200, std::vector<std::uint32_t>{image.input_addr, image.result_addr});
  return image;
}

struct McmRig {
  McmRig(FaultPlan plan, std::uint64_t watchdog)
      : gpu(gpgpu::GpuConfig{}),
        tpiu_fifo(64),
        image(toy_image()),
        faults(plan, 1) {
    igm::IgmConfig igm_cfg;
    igm_cfg.encoder.vocab_size = 256;
    igm_cfg.out_capacity = 64;
    igm = std::make_unique<igm::Igm>(igm_cfg, tpiu_fifo);
    mcm::McmConfig mcfg;
    mcfg.fifo_depth = 4;
    mcfg.watchdog_cycles = watchdog;
    mcm = std::make_unique<mcm::Mcm>(mcfg, *igm, gpu, &faults);
    mcm->load_model(&image);
  }

  void push_branch(std::uint64_t target) {
    std::vector<std::uint8_t> bytes;
    if (!synced) {
      enc.emit_sync(0, 1, bytes);
      synced = true;
    }
    cpu::BranchEvent ev;
    ev.kind = cpu::BranchKind::kCall;
    ev.taken = true;
    ev.target = target;
    ev.retired_ps = 1000;
    enc.encode(ev, bytes);
    coresight::TpiuWord w;
    for (const auto b : bytes) {
      w.bytes[w.count] = coresight::TraceByte{b, 1000, 0, false};
      if (++w.count == 4) {
        tpiu_fifo.push(w);
        w = coresight::TpiuWord{};
      }
    }
    if (w.count > 0) tpiu_fifo.push(w);
  }

  void run(int fabric_cycles) {
    for (int i = 0; i < fabric_cycles; ++i) {
      igm->tick();
      mcm->tick();
      gpu.tick();
      gpu.tick();
    }
  }

  gpgpu::Gpu gpu;
  sim::Fifo<coresight::TpiuWord> tpiu_fifo;
  ml::ModelImage image;
  FaultInjector faults;
  std::unique_ptr<igm::Igm> igm;
  std::unique_ptr<mcm::Mcm> mcm;
  coresight::PftEncoder enc;
  bool synced = false;
};

TEST(McmRecovery, WatchdogAbortsWedgedWaitDone) {
  FaultPlan plan;
  plan.set_rate(FaultSite::kMcmDoneLost, 1.0);
  McmRig rig(plan, /*watchdog=*/3000);
  rig.igm->encoder().map_address(0x50, 5);
  rig.push_branch(0x50);
  rig.run(20'000);
  // Every done indication is lost: the inference result is abandoned, the
  // FSM recovers instead of wedging forever.
  EXPECT_GE(rig.mcm->recoveries(), 1u);
  EXPECT_EQ(rig.mcm->inferences_completed(), 0u);
  EXPECT_EQ(rig.mcm->state(), mcm::McmState::kWaitInput);
}

TEST(McmRecovery, WatchdogZeroDisablesRecovery) {
  FaultPlan plan;
  plan.set_rate(FaultSite::kMcmDoneLost, 1.0);
  McmRig rig(plan, /*watchdog=*/0);
  rig.igm->encoder().map_address(0x50, 5);
  rig.push_branch(0x50);
  rig.run(20'000);
  EXPECT_EQ(rig.mcm->recoveries(), 0u);
  EXPECT_EQ(rig.mcm->state(), mcm::McmState::kWaitDone);  // wedged by design
}

TEST(McmRecovery, LostIrqSuppressesHandlerButNotObserver) {
  FaultPlan plan;
  plan.set_rate(FaultSite::kIrqLost, 1.0);
  McmRig rig(plan, 0);
  rig.igm->encoder().map_address(0x6000, 200);  // token > 100: anomaly
  int handler_calls = 0;
  int observer_calls = 0;
  bool suppressed = false;
  rig.mcm->set_interrupt_handler(
      [&](const mcm::InferenceRecord&) { ++handler_calls; });
  rig.mcm->set_inference_observer([&](const mcm::InferenceRecord& rec) {
    ++observer_calls;
    suppressed = rec.irq_suppressed;
  });
  rig.push_branch(0x6000);
  rig.run(5'000);
  EXPECT_EQ(rig.mcm->inferences_completed(), 1u);
  EXPECT_EQ(observer_calls, 1);
  EXPECT_TRUE(suppressed);
  EXPECT_EQ(handler_calls, 0);
  EXPECT_EQ(rig.mcm->irqs_lost(), 1u);
  EXPECT_EQ(rig.mcm->interrupts_fired(), 0u);
}

TEST(McmRecovery, ConsumerStallDelaysButCompletes) {
  FaultPlan plan;
  plan.set_rate(FaultSite::kMcmStall, 1.0);
  plan.stall_cycles = 64;
  McmRig rig(plan, 0);
  rig.igm->encoder().map_address(0x50, 5);
  rig.push_branch(0x50);
  rig.run(10'000);
  // Rate 1.0 stalls every vector exactly once — no livelock.
  EXPECT_EQ(rig.mcm->stalls_injected(), 1u);
  EXPECT_EQ(rig.mcm->inferences_completed(), 1u);
}

}  // namespace
}  // namespace rtad::fault
