// GPGPU tests: assembler, interpreter semantics, CU scheduling, dispatch,
// coverage recording and trim faulting.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <memory>

#include "rtad/gpgpu/assembler.hpp"
#include "rtad/gpgpu/gpu.hpp"
#include "rtad/gpgpu/rtl_inventory.hpp"

namespace rtad::gpgpu {
namespace {

float bits_to_f(std::uint32_t b) {
  float f;
  std::memcpy(&f, &b, 4);
  return f;
}

/// Run a kernel to completion on a 1-CU GPU and return the GPU for
/// inspection.
std::unique_ptr<Gpu> run_kernel(const Program& prog,
                                std::uint32_t workgroups = 1,
                                std::uint32_t waves = 1,
                                std::uint32_t kernarg = 0x100,
                                bool coverage = false) {
  GpuConfig cfg;
  cfg.num_cus = 1;
  cfg.collect_coverage = coverage;
  auto gpu = std::make_unique<Gpu>(cfg);
  LaunchConfig launch;
  launch.program = &prog;
  launch.workgroups = workgroups;
  launch.waves_per_group = waves;
  launch.kernarg_addr = kernarg;
  gpu->launch(launch);
  gpu->run_to_completion();
  return gpu;
}

TEST(Assembler, ParsesDirectivesAndLabels) {
  const auto p = assemble(R"(
.kernel demo
.vgprs 12
.lds 512
start:
  s_mov_b32 s4, 1
  s_branch start
)");
  EXPECT_EQ(p.name, "demo");
  EXPECT_EQ(p.num_vgprs, 12u);
  EXPECT_EQ(p.lds_bytes, 512u);
  ASSERT_EQ(p.code.size(), 2u);
  EXPECT_EQ(p.code[1].op, Opcode::S_BRANCH);
  EXPECT_EQ(p.code[1].imm, 0);
}

TEST(Assembler, ParsesAllOperandKinds) {
  const auto p = assemble(R"(
  v_add_f32 v1, v2, 1.5
  s_mov_b64 exec, s16
  v_cndmask_b32 v3, 0, 1
  v_cmp_lt_i32 vcc, v0, 32
  global_load_dword v4, v5, s6, 256
)");
  EXPECT_EQ(p.code[0].src1.kind, OperandKind::kLiteral);
  EXPECT_FLOAT_EQ(bits_to_f(p.code[0].src1.literal), 1.5f);
  EXPECT_EQ(p.code[1].dst.kind, OperandKind::kExec);
  EXPECT_EQ(p.code[3].dst.kind, OperandKind::kVcc);
  EXPECT_EQ(p.code[4].imm, 256);
}

TEST(Assembler, ReportsErrorsWithLineNumbers) {
  EXPECT_THROW(assemble("  bogus_op v1, v2\n"), AsmError);
  EXPECT_THROW(assemble("  s_branch nowhere\n"), AsmError);
  EXPECT_THROW(assemble("  s_mov_b32 s1\n"), AsmError);  // missing operand
  EXPECT_THROW(assemble("dup:\ndup:\n  s_endpgm\n"), AsmError);
  try {
    assemble("  s_nop\n  junk x\n");
    FAIL() << "expected AsmError";
  } catch (const AsmError& e) {
    EXPECT_EQ(e.line(), 2u);
  }
}

TEST(Assembler, DisassemblyRoundTripsMnemonic) {
  const auto p = assemble("  v_mac_f32 v2, v3, v4\n  s_endpgm\n");
  const auto text = disassemble(p);
  EXPECT_NE(text.find("v_mac_f32"), std::string::npos);
  EXPECT_NE(text.find("s_endpgm"), std::string::npos);
}

TEST(Interpreter, ScalarArithmeticAndCompare) {
  // Compute several scalar results and publish them from lane 0.
  const auto p = assemble(R"(
  s_mov_b32 s4, 10
  s_mov_b32 s5, 3
  s_add_i32 s6, s4, s5
  s_sub_i32 s7, s4, s5
  s_mul_i32 s8, s4, s5
  s_lshl_b32 s9, s4, 2
  s_cmp_lt_i32 s5, s4
  s_cbranch_scc1 good
  s_mov_b32 s10, 0
  s_branch publish
good:
  s_mov_b32 s10, 1
publish:
  v_cmp_lt_i32 vcc, v0, 1
  s_and_b64 exec, exec, vcc
  s_mov_b32 s11, 4096
  v_mov_b32 v2, 0
  v_mov_b32 v3, s6
  global_store_dword v3, v2, s11, 0
  v_mov_b32 v3, s7
  global_store_dword v3, v2, s11, 4
  v_mov_b32 v3, s8
  global_store_dword v3, v2, s11, 8
  v_mov_b32 v3, s9
  global_store_dword v3, v2, s11, 12
  v_mov_b32 v3, s10
  global_store_dword v3, v2, s11, 16
  s_endpgm
)");
  auto gpu = run_kernel(p);
  EXPECT_EQ(gpu->memory().read32(4096), 13u);
  EXPECT_EQ(gpu->memory().read32(4100), 7u);
  EXPECT_EQ(gpu->memory().read32(4104), 30u);
  EXPECT_EQ(gpu->memory().read32(4108), 40u);
  EXPECT_EQ(gpu->memory().read32(4112), 1u);  // taken branch path
}

TEST(Interpreter, VectorLaneIndexAndStore) {
  // Each lane stores its lane id (v0) at base + 4*lane.
  const auto p = assemble(R"(
  s_mov_b32 s4, 4096
  v_lshlrev_b32 v2, 2, v0
  global_store_dword v0, v2, s4
  s_endpgm
)");
  auto gpu = run_kernel(p);
  for (std::uint32_t lane = 0; lane < 64; ++lane) {
    EXPECT_EQ(gpu->memory().read32(4096 + 4 * lane), lane);
  }
}

TEST(Interpreter, FloatArithmetic) {
  // out[lane] = lane * 0.5 + 1.0 via v_mac.
  const auto p = assemble(R"(
  s_mov_b32 s4, 4096
  v_cvt_f32_u32 v2, v0
  v_mov_b32 v3, 1.0
  v_mac_f32 v3, v2, 0.5
  v_lshlrev_b32 v4, 2, v0
  global_store_dword v3, v4, s4
  s_endpgm
)");
  auto gpu = run_kernel(p);
  for (std::uint32_t lane = 0; lane < 64; lane += 13) {
    EXPECT_FLOAT_EQ(gpu->memory().read_f32(4096 + 4 * lane),
                    1.0f + 0.5f * static_cast<float>(lane));
  }
}

TEST(Interpreter, TranscendentalExpRcp) {
  // out = 1 / (1 + 2^-x) for x = lane.
  const auto p = assemble(R"(
  s_mov_b32 s4, 4096
  v_cvt_f32_u32 v2, v0
  v_mul_f32 v3, v2, -1.0
  v_exp_f32 v3, v3
  v_add_f32 v3, v3, 1.0
  v_rcp_f32 v3, v3
  v_lshlrev_b32 v4, 2, v0
  global_store_dword v3, v4, s4
  s_endpgm
)");
  auto gpu = run_kernel(p);
  for (std::uint32_t lane : {0u, 1u, 5u}) {
    const float expect = 1.0f / (1.0f + std::exp2(-static_cast<float>(lane)));
    EXPECT_NEAR(gpu->memory().read_f32(4096 + 4 * lane), expect, 1e-6);
  }
}

TEST(Interpreter, ExecMaskingViaCmpAndCndmask) {
  // Lanes < 8 store 111, others store 222 (via cndmask), then exec-mask a
  // second store so only lane 0 overwrites with 333.
  const auto p = assemble(R"(
  s_mov_b32 s4, 4096
  v_lshlrev_b32 v2, 2, v0
  v_cmp_lt_i32 vcc, v0, 8
  v_cndmask_b32 v3, 222, 111
  global_store_dword v3, v2, s4
  v_cmp_lt_i32 vcc, v0, 1
  s_mov_b64 s16, exec
  s_and_b64 exec, exec, vcc
  v_mov_b32 v4, 333
  global_store_dword v4, v2, s4
  s_mov_b64 exec, s16
  s_endpgm
)");
  auto gpu = run_kernel(p);
  EXPECT_EQ(gpu->memory().read32(4096), 333u);
  EXPECT_EQ(gpu->memory().read32(4096 + 4), 111u);
  EXPECT_EQ(gpu->memory().read32(4096 + 4 * 8), 222u);
}

TEST(Interpreter, ScalarLoopSumsViaMemory) {
  // Sum 0..9 in a scalar loop, store via lane 0.
  const auto p = assemble(R"(
  s_mov_b32 s4, 4096
  s_mov_b32 s5, 0
  s_mov_b32 s6, 0
loop:
  s_cmp_ge_i32 s6, 10
  s_cbranch_scc1 done
  s_add_i32 s5, s5, s6
  s_add_i32 s6, s6, 1
  s_branch loop
done:
  v_cmp_lt_i32 vcc, v0, 1
  s_and_b64 exec, exec, vcc
  v_mov_b32 v2, s5
  v_mov_b32 v3, 0
  global_store_dword v2, v3, s4
  s_endpgm
)");
  auto gpu = run_kernel(p);
  EXPECT_EQ(gpu->memory().read32(4096), 45u);
}

TEST(Interpreter, SmemLoadsKernargs) {
  const auto prog = assemble(R"(
  s_load_dword s4, s0, 0
  s_load_dword s5, s0, 4
  s_waitcnt 0
  s_add_i32 s6, s4, s5
  v_cmp_lt_i32 vcc, v0, 1
  s_and_b64 exec, exec, vcc
  v_mov_b32 v2, s6
  v_mov_b32 v3, 0
  s_mov_b32 s7, 8192
  global_store_dword v2, v3, s7
  s_endpgm
)");
  GpuConfig cfg;
  Gpu gpu(cfg);
  gpu.memory().write32(0x100, 40);
  gpu.memory().write32(0x104, 2);
  LaunchConfig launch;
  launch.program = &prog;
  launch.kernarg_addr = 0x100;
  gpu.launch(launch);
  gpu.run_to_completion();
  EXPECT_EQ(gpu.memory().read32(8192), 42u);
}

TEST(Interpreter, LdsReadWriteAndBarrier) {
  // Wave writes lane ids into LDS, barrier, reads neighbour's slot.
  const auto p = assemble(R"(
.lds 512
  s_mov_b32 s4, 4096
  v_lshlrev_b32 v2, 2, v0
  ds_write_b32 v0, v2
  s_barrier
  ds_read_b32 v3, v2, 4
  global_store_dword v3, v2, s4
  s_endpgm
)");
  auto gpu = run_kernel(p);
  // lane i reads slot i+1 (lane 63 reads past the wave: slot 64 is zero).
  EXPECT_EQ(gpu->memory().read32(4096), 1u);
  EXPECT_EQ(gpu->memory().read32(4096 + 4 * 10), 11u);
}

TEST(Interpreter, F64PipeWorks) {
  // Double the value 1.5 in f64 and convert back.
  const auto p = assemble(R"(
  s_mov_b32 s4, 4096
  v_mov_b32 v2, 1.5
  v_cvt_f64_f32 v4, v2
  v_add_f64 v6, v4, v4
  v_cvt_f32_f64 v8, v6
  v_lshlrev_b32 v9, 2, v0
  global_store_dword v8, v9, s4
  s_endpgm
)");
  auto gpu = run_kernel(p);
  EXPECT_FLOAT_EQ(gpu->memory().read_f32(4096), 3.0f);
}

TEST(Interpreter, AtomicAddReturnsOld) {
  const auto p = assemble(R"(
  s_mov_b32 s4, 4096
  v_mov_b32 v2, 0
  v_mov_b32 v3, 1
  buffer_atomic_add v5, v2, s4, v3
  s_endpgm
)");
  auto gpu = run_kernel(p);
  EXPECT_EQ(gpu->memory().read32(4096), 64u);  // 64 lanes incremented
}

TEST(ComputeUnit, MultiWaveLatencyHiding) {
  // A load-heavy loop: two waves should finish in noticeably fewer cycles
  // than 2x one wave (issue slots interleave during load shadows).
  const auto p = assemble(R"(
  s_mov_b32 s4, 4096
  v_lshlrev_b32 v2, 2, v1
  v_mov_b32 v3, 0
  s_mov_b32 s5, 0
loop:
  s_cmp_ge_i32 s5, 32
  s_cbranch_scc1 done
  global_load_dword v4, v2, s4
  v_add_i32 v3, v3, v4
  s_add_i32 s5, s5, 1
  s_branch loop
done:
  s_endpgm
)");
  auto gpu1 = run_kernel(p, 1, 1);
  const auto one_wave = gpu1->last_launch_cycles();
  auto gpu2 = run_kernel(p, 1, 2);
  const auto two_waves = gpu2->last_launch_cycles();
  EXPECT_LT(two_waves, 2 * one_wave);
  EXPECT_GT(two_waves, one_wave);
}

TEST(Gpu, DispatchesWorkgroupsAcrossCus) {
  const auto p = assemble(R"(
  s_mov_b32 s4, 4096
  s_lshl_b32 s5, s1, 2
  s_add_i32 s4, s4, s5
  v_cmp_lt_i32 vcc, v0, 1
  s_and_b64 exec, exec, vcc
  v_mov_b32 v2, s1
  v_mov_b32 v3, 0
  global_store_dword v2, v3, s4
  s_endpgm
)");
  GpuConfig cfg;
  cfg.num_cus = 5;
  Gpu gpu(cfg);
  LaunchConfig launch;
  launch.program = &p;
  launch.workgroups = 10;
  gpu.launch(launch);
  gpu.run_to_completion();
  for (std::uint32_t wg = 0; wg < 10; ++wg) {
    EXPECT_EQ(gpu.memory().read32(4096 + 4 * wg), wg);
  }
}

TEST(Gpu, MoreCusFinishSooner) {
  const auto p = assemble(R"(
  s_mov_b32 s5, 0
loop:
  s_cmp_ge_i32 s5, 200
  s_cbranch_scc1 done
  s_add_i32 s5, s5, 1
  s_branch loop
done:
  s_endpgm
)");
  GpuConfig one;
  one.num_cus = 1;
  Gpu gpu1(one);
  LaunchConfig launch;
  launch.program = &p;
  launch.workgroups = 5;
  gpu1.launch(launch);
  gpu1.run_to_completion();

  GpuConfig five;
  five.num_cus = 5;
  Gpu gpu5(five);
  gpu5.launch(launch);
  gpu5.run_to_completion();

  EXPECT_GT(gpu1.last_launch_cycles(),
            3 * gpu5.last_launch_cycles());
}

TEST(Gpu, RejectsBadLaunches) {
  GpuConfig cfg;
  Gpu gpu(cfg);
  LaunchConfig launch;
  EXPECT_THROW(gpu.launch(launch), std::invalid_argument);  // no program
  const auto p = assemble("  s_endpgm\n");
  launch.program = &p;
  launch.waves_per_group = 9;
  EXPECT_THROW(gpu.launch(launch), std::invalid_argument);
}

TEST(Gpu, MissingEndpgmFaults) {
  const auto p = assemble("  s_mov_b32 s4, 1\n");
  GpuConfig cfg;
  Gpu gpu(cfg);
  LaunchConfig launch;
  launch.program = &p;
  gpu.launch(launch);
  EXPECT_THROW(gpu.run_to_completion(), std::runtime_error);
}

TEST(Coverage, RecordsOpcodeFormatPipeAndBanks) {
  const auto p = assemble(R"(
  v_mov_b32 v2, 7
  s_endpgm
)");
  auto gpu = run_kernel(p, 1, 1, 0x100, /*coverage=*/true);
  const auto& inv = RtlInventory::instance();
  const auto& cov = gpu->coverage();
  EXPECT_GT(cov[inv.opcode_unit(Opcode::V_MOV_B32)], 0u);
  EXPECT_GT(cov[inv.opcode_unit(Opcode::S_ENDPGM)], 0u);
  EXPECT_GT(cov[inv.format_unit(Format::kVop1)], 0u);
  EXPECT_GT(cov[inv.pipe_unit(Pipe::kValuF32)], 0u);
  EXPECT_GT(cov[inv.vgpr_bank_unit(0)], 0u);
  EXPECT_EQ(cov[inv.vgpr_bank_unit(7)], 0u);
  EXPECT_GT(cov[inv.sgpr_bank_unit(0)], 0u);
  // Unused exotic unit stays dark.
  EXPECT_EQ(cov[inv.opcode_unit(Opcode::IMAGE_SAMPLE)], 0u);
}

TEST(Trim, RemovedUnitFaultsWhenExercised) {
  const auto& inv = RtlInventory::instance();
  const auto p = assemble("  v_sin_f32 v2, v3\n  s_endpgm\n");
  GpuConfig cfg;
  Gpu gpu(cfg);
  auto retained = inv.all_retained();
  retained[inv.opcode_unit(Opcode::V_SIN_F32)] = false;
  gpu.set_trim(retained);
  LaunchConfig launch;
  launch.program = &p;
  gpu.launch(launch);
  EXPECT_THROW(gpu.run_to_completion(), TrimViolation);
}

TEST(Trim, RetainedUnitsExecuteNormally) {
  const auto& inv = RtlInventory::instance();
  const auto p = assemble(R"(
  s_mov_b32 s4, 4096
  v_mov_b32 v2, 9
  v_lshlrev_b32 v3, 2, v0
  global_store_dword v2, v3, s4
  s_endpgm
)");
  GpuConfig cfg;
  Gpu gpu(cfg);
  gpu.set_trim(inv.ml_retained());
  LaunchConfig launch;
  launch.program = &p;
  gpu.launch(launch);
  gpu.run_to_completion();
  EXPECT_EQ(gpu.memory().read32(4096), 9u);
}

TEST(Inventory, AreaTotalsMatchPaper) {
  const auto& inv = RtlInventory::instance();
  const auto full = inv.total_area();
  EXPECT_EQ(full.luts, 180'902u);
  EXPECT_EQ(full.ffs, 107'001u);
  const auto trimmed = inv.area_of(inv.ml_retained());
  EXPECT_EQ(trimmed.luts, 36'743u);
  EXPECT_EQ(trimmed.ffs, 15'275u);
  // Five trimmed CUs match Table I's ML-MIAOW row.
  EXPECT_EQ(trimmed.luts * 5, 183'715u);
  EXPECT_EQ(trimmed.ffs * 5, 76'375u);
  EXPECT_EQ(trimmed.brams * 5, 140u);
}

TEST(Inventory, LookupsAreConsistent) {
  const auto& inv = RtlInventory::instance();
  for (std::size_t i = 0; i < kNumOpcodes; ++i) {
    const auto op = static_cast<Opcode>(i);
    const auto& unit = inv.unit(inv.opcode_unit(op));
    EXPECT_EQ(unit.klass, UnitClass::kOpcode) << mnemonic(op);
    EXPECT_EQ(unit.used_by_ml, opcode_used_by_ml(op)) << mnemonic(op);
  }
  for (std::size_t f = 0; f < kNumFormats; ++f) {
    const auto& unit = inv.unit(inv.format_unit(static_cast<Format>(f)));
    EXPECT_EQ(unit.klass, UnitClass::kDecoder);
    EXPECT_TRUE(unit.alu_or_decoder);
  }
}

TEST(Inventory, GateModelNearPaperTotal) {
  const auto& inv = RtlInventory::instance();
  const auto t = inv.area_of(inv.ml_retained());
  const AreaTotals five{t.luts * 5, t.ffs * 5, t.brams * 5};
  const double ge = gate_equivalents(five);
  EXPECT_NEAR(ge, 1'865'989.0, 20'000.0);  // within ~1%
}

}  // namespace
}  // namespace rtad::gpgpu
