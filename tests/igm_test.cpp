// IGM tests: trace analyzer throughput, P2S, address mapper, vector
// encoder, and the assembled pipeline's 2-cycle latency property.
#include <gtest/gtest.h>

#include "rtad/coresight/pft_encoder.hpp"
#include "rtad/coresight/ptm.hpp"
#include "rtad/coresight/tpiu.hpp"
#include "rtad/igm/igm.hpp"
#include "rtad/sim/rng.hpp"

namespace rtad::igm {
namespace {

using coresight::PftEncoder;
using coresight::TpiuWord;
using coresight::TraceByte;

// Helper: bytes -> TPIU words.
std::vector<TpiuWord> to_words(const std::vector<std::uint8_t>& bytes,
                               bool injected = false) {
  std::vector<TpiuWord> words;
  TpiuWord w;
  std::uint64_t seq = 0;
  for (const auto b : bytes) {
    w.bytes[w.count] = TraceByte{b, 1000, seq++, injected};
    ++w.count;
    if (w.count == 4) {
      words.push_back(w);
      w = TpiuWord{};
    }
  }
  if (w.count > 0) words.push_back(w);
  return words;
}

std::vector<std::uint8_t> encoded_stream(std::size_t n_branches,
                                         std::uint64_t seed = 7) {
  sim::Xoshiro256 rng(seed);
  PftEncoder enc;
  std::vector<std::uint8_t> bytes;
  enc.emit_sync(0, 1, bytes);
  for (std::size_t i = 0; i < n_branches; ++i) {
    cpu::BranchEvent ev;
    ev.kind = cpu::BranchKind::kCall;
    ev.taken = true;
    ev.target = (rng.next() & 0x000F'FFFE) + 0x10000;
    enc.encode(ev, bytes);
  }
  return bytes;
}

TEST(TraceAnalyzer, DecodesWholeStream) {
  sim::Fifo<TpiuWord> port(4096);
  for (const auto& w : to_words(encoded_stream(200))) port.push(w);
  TraceAnalyzer ta(port, 4, 4096);
  for (int i = 0; i < 4096; ++i) ta.tick();
  EXPECT_EQ(ta.decoder().branches_decoded(), 200u);
  EXPECT_EQ(ta.out().size(), 200u);
}

TEST(TraceAnalyzer, WidthBoundsThroughput) {
  // 1 TA unit processes <= 1 byte/cycle; 4 TA units <= 4 bytes/cycle.
  const auto bytes = encoded_stream(300);
  for (const std::uint32_t width : {1u, 2u, 4u}) {
    sim::Fifo<TpiuWord> port(4096);
    for (const auto& w : to_words(bytes)) port.push(w);
    TraceAnalyzer ta(port, width, 1u << 20);
    std::uint64_t cycles = 0;
    while (ta.decoder().branches_decoded() < 300 && cycles < 1u << 20) {
      ta.tick();
      ++cycles;
    }
    EXPECT_GE(cycles + 4, bytes.size() / width) << "width " << width;
    EXPECT_LE(cycles, bytes.size() / width + 8) << "width " << width;
  }
}

TEST(TraceAnalyzer, BackpressureStallsWithoutLoss) {
  sim::Fifo<TpiuWord> port(4096);
  for (const auto& w : to_words(encoded_stream(100))) port.push(w);
  TraceAnalyzer ta(port, 4, 1);  // tiny output FIFO
  std::uint64_t decoded = 0;
  for (int i = 0; i < 100'000 && decoded < 100; ++i) {
    ta.tick();
    while (auto b = ta.out().pop()) ++decoded;
  }
  EXPECT_EQ(decoded, 100u);
  EXPECT_GT(ta.stall_cycles(), 0u);
}

TEST(TraceAnalyzer, RejectsBadWidth) {
  sim::Fifo<TpiuWord> port(4);
  EXPECT_THROW(TraceAnalyzer(port, 0), std::invalid_argument);
  EXPECT_THROW(TraceAnalyzer(port, 5), std::invalid_argument);
}

TEST(P2s, SerializesOnePerCycle) {
  sim::Fifo<TpiuWord> port(16);
  TraceAnalyzer ta(port, 4);
  P2s p2s(ta.out());
  // Manually fill the TA output with a burst of 4 decoded addresses.
  for (int i = 0; i < 4; ++i) {
    ta.out().push(DecodedBranch{0x1000u + 2u * static_cast<unsigned>(i),
                                false, 0, static_cast<std::uint64_t>(i),
                                false});
  }
  int received = 0;
  for (int cycle = 0; cycle < 4; ++cycle) {
    p2s.tick();
    EXPECT_LE(p2s.out().size(), static_cast<std::size_t>(cycle + 1));
  }
  while (p2s.out().pop()) ++received;
  EXPECT_EQ(received, 4);
}

TEST(AddressMapper, PassAllByDefault) {
  AddressMapper m;
  EXPECT_TRUE(m.passes(DecodedBranch{0x1234, false, 0, 0, false}));
}

TEST(AddressMapper, ExactEntriesFilter) {
  AddressMapper m;
  m.clear();
  m.add_exact(0x2000);
  EXPECT_TRUE(m.passes(DecodedBranch{0x2000, false, 0, 0, false}));
  EXPECT_FALSE(m.passes(DecodedBranch{0x2002, false, 0, 0, false}));
}

TEST(AddressMapper, RangesFilter) {
  AddressMapper m;
  m.clear();
  m.add_range(0xC000'0000, 0x1000);
  EXPECT_TRUE(m.passes(DecodedBranch{0xC000'0040, true, 0, 0, false}));
  EXPECT_FALSE(m.passes(DecodedBranch{0xC000'1000, true, 0, 0, false}));
  EXPECT_FALSE(m.passes(DecodedBranch{0xBFFF'FFFC, true, 0, 0, false}));
}

TEST(AddressMapper, CountsAcceptedAndFiltered) {
  AddressMapper m;
  m.clear();
  m.add_exact(0x10);
  m.note(m.passes(DecodedBranch{0x10, false, 0, 0, false}));
  m.note(m.passes(DecodedBranch{0x20, false, 0, 0, false}));
  EXPECT_EQ(m.accepted(), 1u);
  EXPECT_EQ(m.filtered(), 1u);
}

TEST(VectorEncoder, TokenStreamUsesTable) {
  VectorEncoderConfig cfg;
  cfg.encoding = Encoding::kTokenStream;
  cfg.vocab_size = 16;
  cfg.hash_fallback = false;
  VectorEncoder enc(cfg);
  enc.map_address(0x4000, 7);
  InputVector out;
  ASSERT_TRUE(enc.encode(DecodedBranch{0x4000, false, 99, 5, true}, out));
  ASSERT_EQ(out.payload.size(), 1u);
  EXPECT_EQ(out.payload[0], 7u);
  EXPECT_EQ(out.origin_ps, 99u);
  EXPECT_EQ(out.event_seq, 5u);
  EXPECT_TRUE(out.injected);
}

TEST(VectorEncoder, UnknownAddressGoesToReservedBucketWithoutHash) {
  VectorEncoderConfig cfg;
  cfg.encoding = Encoding::kTokenStream;
  cfg.vocab_size = 16;
  cfg.hash_fallback = false;
  VectorEncoder enc(cfg);
  InputVector out;
  enc.encode(DecodedBranch{0xAAAA, false, 0, 0, false}, out);
  EXPECT_EQ(out.payload[0], 15u);
}

TEST(VectorEncoder, HashFallbackIsStable) {
  const auto b1 = VectorEncoder::hash_bucket(0xC000'0040, 32);
  const auto b2 = VectorEncoder::hash_bucket(0xC000'0040, 32);
  EXPECT_EQ(b1, b2);
  EXPECT_LT(b1, 32u);
}

TEST(VectorEncoder, HistogramSlidesAndCounts) {
  VectorEncoderConfig cfg;
  cfg.encoding = Encoding::kSlidingHistogram;
  cfg.vocab_size = 4;
  cfg.window = 3;
  cfg.hash_fallback = false;
  VectorEncoder enc(cfg);
  enc.map_address(0x10, 0);
  enc.map_address(0x20, 1);
  InputVector out;
  enc.encode(DecodedBranch{0x10, true, 0, 0, false}, out);
  enc.encode(DecodedBranch{0x10, true, 0, 1, false}, out);
  enc.encode(DecodedBranch{0x20, true, 0, 2, false}, out);
  EXPECT_EQ(out.payload[0], 2u);
  EXPECT_EQ(out.payload[1], 1u);
  // Fourth event slides the first 0x10 out of the window.
  enc.encode(DecodedBranch{0x20, true, 0, 3, false}, out);
  EXPECT_EQ(out.payload[0], 1u);
  EXPECT_EQ(out.payload[1], 2u);
}

TEST(VectorEncoder, InjectionTaintPersistsForOneWindow) {
  VectorEncoderConfig cfg;
  cfg.encoding = Encoding::kSlidingHistogram;
  cfg.vocab_size = 4;
  cfg.window = 3;
  VectorEncoder enc(cfg);
  InputVector out;
  enc.encode(DecodedBranch{0x10, true, 0, 0, true}, out);
  EXPECT_TRUE(out.injected);
  enc.encode(DecodedBranch{0x10, true, 0, 1, false}, out);
  EXPECT_TRUE(out.injected);  // still inside the tainted window
  enc.encode(DecodedBranch{0x10, true, 0, 2, false}, out);
  enc.encode(DecodedBranch{0x10, true, 0, 3, false}, out);
  EXPECT_FALSE(out.injected);  // taint expired
}

TEST(VectorEncoder, ValidatesConfig) {
  VectorEncoderConfig cfg;
  cfg.vocab_size = 0;
  EXPECT_THROW(VectorEncoder{cfg}, std::invalid_argument);
  VectorEncoderConfig cfg2;
  cfg2.encoding = Encoding::kSlidingHistogram;
  cfg2.window = 0;
  EXPECT_THROW(VectorEncoder{cfg2}, std::invalid_argument);
  VectorEncoderConfig cfg3;
  cfg3.vocab_size = 4;
  VectorEncoder enc(cfg3);
  EXPECT_THROW(enc.map_address(0x10, 4), std::invalid_argument);
}

TEST(Igm, EndToEndPipelineDecodesAndEncodes) {
  sim::Fifo<TpiuWord> port(4096);
  for (const auto& w : to_words(encoded_stream(150))) port.push(w);
  IgmConfig cfg;
  cfg.encoder.encoding = Encoding::kTokenStream;
  cfg.encoder.vocab_size = 64;
  cfg.encoder.hash_fallback = true;
  cfg.out_capacity = 1024;
  Igm igm(cfg, port);
  std::uint64_t got = 0;
  for (int i = 0; i < 20'000 && got < 150; ++i) {
    igm.tick();
    while (igm.out().pop()) ++got;
  }
  EXPECT_EQ(got, 150u);
}

TEST(Igm, PipelineLatencyIsTwoCyclesAfterDecode) {
  // Feed exactly one branch-address packet and count IGM cycles from the
  // tick that consumes the TPIU word to the tick that emits the vector.
  PftEncoder enc;
  std::vector<std::uint8_t> bytes;
  enc.emit_sync(0, 1, bytes);
  const std::size_t sync_len = bytes.size();
  cpu::BranchEvent ev;
  ev.kind = cpu::BranchKind::kCall;
  ev.taken = true;
  ev.target = 0x0001'0040;
  enc.encode(ev, bytes);

  sim::Fifo<TpiuWord> port(64);
  for (const auto& w : to_words(bytes)) port.push(w);
  IgmConfig cfg;
  cfg.encoder.vocab_size = 64;
  Igm igm(cfg, port);

  // Sync bytes (13) + packet decode at 4 bytes/cycle.
  const std::size_t decode_cycles = (sync_len + 4 + 3) / 4;
  for (std::size_t i = 0; i < decode_cycles; ++i) igm.tick();
  EXPECT_TRUE(igm.out().empty());
  igm.tick();  // P2S stage
  igm.tick();  // IVG stage
  // Allow one extra cycle of skew from packet/byte alignment.
  if (igm.out().empty()) igm.tick();
  EXPECT_FALSE(igm.out().empty());
}

TEST(Igm, FiltersThroughMapper) {
  sim::Fifo<TpiuWord> port(4096);
  for (const auto& w : to_words(encoded_stream(100))) port.push(w);
  IgmConfig cfg;
  cfg.encoder.vocab_size = 64;
  Igm igm(cfg, port);
  igm.mapper().clear();
  igm.mapper().add_exact(0xFFFF'0000);  // matches nothing in the stream
  for (int i = 0; i < 10'000; ++i) igm.tick();
  EXPECT_EQ(igm.vectors_out(), 0u);
  EXPECT_EQ(igm.mapper().filtered(), 100u);
}

TEST(Igm, EmitObserverSeesVectors) {
  sim::Fifo<TpiuWord> port(4096);
  for (const auto& w : to_words(encoded_stream(50))) port.push(w);
  IgmConfig cfg;
  cfg.encoder.vocab_size = 64;
  cfg.out_capacity = 1024;
  Igm igm(cfg, port);
  std::size_t seen = 0;
  sim::Picoseconds last_emit = 0;
  igm.set_emit_observer([&](const InputVector&, sim::Picoseconds t) {
    ++seen;
    last_emit = t;
  });
  for (int i = 0; i < 10'000; ++i) igm.tick();
  EXPECT_EQ(seen, 50u);
  EXPECT_GT(last_emit, 0u);
}

}  // namespace
}  // namespace rtad::igm
