// Exhaustive interpreter-semantics tests: every opcode family is exercised
// with known operands and checked against reference results, including the
// graphics-legacy pipes that exist only as trim candidates.
//
// The second half is a seeded differential fuzzer between the two kernel
// execution backends: randomized straight-line and branchy programs run on
// both the cycle-level oracle and the fast-path interpreter, and the final
// architectural state (device memory, access counters, instruction count,
// launch cycles) must match bit-for-bit. Seeds are fixed, so the corpus is
// deterministic and a failing seed reproduces exactly.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <random>
#include <string>
#include <vector>

#include "rtad/gpgpu/assembler.hpp"
#include "rtad/gpgpu/gpu.hpp"

namespace rtad::gpgpu {
namespace {

constexpr std::uint32_t kOut = 4096;

/// Run a fragment with a store-from-lane0 epilogue appended: the fragment
/// must leave its result in v10 (bits) for lane 0.
std::uint32_t run_lane0(const std::string& fragment) {
  const std::string src = fragment + R"(
  v_cmp_lt_i32 vcc, v0, 1
  s_and_b64 exec, exec, vcc
  s_mov_b32 s20, 4096
  v_mov_b32 v11, 0
  global_store_dword v10, v11, s20
  s_endpgm
)";
  const auto prog = assemble(src);
  GpuConfig cfg;
  Gpu gpu(cfg);
  LaunchConfig launch;
  launch.program = &prog;
  gpu.launch(launch);
  gpu.run_to_completion();
  return gpu.memory().read32(kOut);
}

float as_f(std::uint32_t bits) {
  float f;
  std::memcpy(&f, &bits, 4);
  return f;
}

TEST(ScalarOps, LogicalAndShifts) {
  EXPECT_EQ(run_lane0(R"(
  s_mov_b32 s4, 0xF0F0
  s_mov_b32 s5, 0x0FF0
  s_and_b32 s6, s4, s5
  v_mov_b32 v10, s6
)"), 0x0FF0u & 0xF0F0u);
  EXPECT_EQ(run_lane0(R"(
  s_mov_b32 s4, 0xF0F0
  s_or_b32 s6, s4, 0x000F
  v_mov_b32 v10, s6
)"), 0xF0FFu);
  EXPECT_EQ(run_lane0(R"(
  s_mov_b32 s4, 0xFF00
  s_xor_b32 s6, s4, 0x0F00
  v_mov_b32 v10, s6
)"), 0xF000u);
  EXPECT_EQ(run_lane0(R"(
  s_mov_b32 s4, 0x80000000
  s_lshr_b32 s6, s4, 4
  v_mov_b32 v10, s6
)"), 0x08000000u);
  EXPECT_EQ(run_lane0(R"(
  s_mov_b32 s4, 0x80000000
  s_ashr_i32 s6, s4, 4
  v_mov_b32 v10, s6
)"), 0xF8000000u);
  EXPECT_EQ(run_lane0(R"(
  s_mov_b32 s4, 0x0000FFFF
  s_not_b32 s6, s4
  v_mov_b32 v10, s6
)"), 0xFFFF0000u);
}

TEST(ScalarOps, MinMax) {
  EXPECT_EQ(run_lane0(R"(
  s_mov_b32 s4, -5
  s_mov_b32 s5, 3
  s_min_i32 s6, s4, s5
  v_mov_b32 v10, s6
)"), static_cast<std::uint32_t>(-5));
  EXPECT_EQ(run_lane0(R"(
  s_mov_b32 s4, -5
  s_mov_b32 s5, 3
  s_max_i32 s6, s4, s5
  v_mov_b32 v10, s6
)"), 3u);
}

TEST(ScalarOps, MovkSignExtends) {
  EXPECT_EQ(run_lane0(R"(
  s_movk_i32 s4, -2
  v_mov_b32 v10, s4
)"), 0xFFFFFFFEu);
}

TEST(ScalarOps, CompareVariants) {
  // Each compare drives a conditional branch; result 1 = taken.
  const char* templates[] = {
      "s_cmp_eq_i32 s4, 7",  "s_cmp_lg_i32 s4, 3",  "s_cmp_gt_i32 s4, 3",
      "s_cmp_ge_i32 s4, 7",  "s_cmp_lt_i32 s4, 9",  "s_cmp_le_i32 s4, 7",
  };
  for (const char* cmp : templates) {
    const std::string src = std::string(R"(
  s_mov_b32 s4, 7
  )") + cmp + R"(
  s_cbranch_scc1 yes
  v_mov_b32 v10, 0
  s_branch end
yes:
  v_mov_b32 v10, 1
end:
)";
    EXPECT_EQ(run_lane0(src), 1u) << cmp;
  }
}

TEST(Scalar64, ExecManipulation) {
  // Save, narrow, restore EXEC through SGPR pairs and 64-bit logic.
  EXPECT_EQ(run_lane0(R"(
  s_mov_b64 s8, exec
  s_not_b64 s10, s8
  s_or_b64 s12, s8, s10
  s_andn2_b64 s14, s12, s10
  s_mov_b64 exec, s14
  v_mov_b32 v10, 77
)"), 77u);
}

TEST(VectorOps, IntArithmetic) {
  EXPECT_EQ(run_lane0(R"(
  v_mov_b32 v4, 100
  v_sub_i32 v5, v4, 58
  v_mov_b32 v10, v5
)"), 42u);
  EXPECT_EQ(run_lane0(R"(
  v_mov_b32 v4, 0x10001
  v_mul_lo_i32 v5, v4, v4
  v_mov_b32 v10, v5
)"), 0x10001u * 0x10001u);
  EXPECT_EQ(run_lane0(R"(
  v_mov_b32 v4, 0x80000000
  v_mul_hi_u32 v5, v4, 4
  v_mov_b32 v10, v5
)"), 2u);
  EXPECT_EQ(run_lane0(R"(
  v_mov_b32 v4, 0xF0
  v_lshrrev_b32 v5, 4, v4
  v_mov_b32 v10, v5
)"), 0xFu);
  EXPECT_EQ(run_lane0(R"(
  v_mov_b32 v4, 0x80000000
  v_ashrrev_i32 v5, 8, v4
  v_mov_b32 v10, v5
)"), 0xFF800000u);
  EXPECT_EQ(run_lane0(R"(
  v_mov_b32 v4, 0xAA
  v_xor_b32 v5, v4, 0xFF
  v_or_b32 v5, v5, 0x100
  v_and_b32 v5, v5, 0x1FF
  v_mov_b32 v10, v5
)"), 0x155u);
  EXPECT_EQ(run_lane0(R"(
  v_mov_b32 v4, -9
  v_max_i32 v5, v4, 2
  v_min_i32 v6, v5, 1
  v_mov_b32 v10, v6
)"), 1u);
  EXPECT_EQ(run_lane0(R"(
  v_mov_b32 v4, 0x0F
  v_not_b32 v10, v4
)"), 0xFFFFFFF0u);
}

TEST(VectorOps, FloatReference) {
  EXPECT_FLOAT_EQ(as_f(run_lane0(R"(
  v_mov_b32 v4, 2.5
  v_mov_b32 v5, 4.0
  v_mad_f32 v10, v4, v5, 1.5
)")), 11.5f);
  EXPECT_FLOAT_EQ(as_f(run_lane0(R"(
  v_mov_b32 v4, 2.5
  v_fma_f32 v10, v4, v4, 0.75
)")), std::fma(2.5f, 2.5f, 0.75f));
  EXPECT_FLOAT_EQ(as_f(run_lane0(R"(
  v_mov_b32 v4, -3.75
  v_floor_f32 v10, v4
)")), -4.0f);
  EXPECT_FLOAT_EQ(as_f(run_lane0(R"(
  v_mov_b32 v4, 3.75
  v_fract_f32 v10, v4
)")), 0.75f);
  EXPECT_FLOAT_EQ(as_f(run_lane0(R"(
  v_mov_b32 v4, 2.25
  v_min_f32 v5, v4, 9.0
  v_max_f32 v10, v5, 1.0
)")), 2.25f);
}

TEST(VectorOps, Transcendentals) {
  EXPECT_NEAR(as_f(run_lane0(R"(
  v_mov_b32 v4, 3.0
  v_exp_f32 v10, v4
)")), 8.0f, 1e-5);
  EXPECT_NEAR(as_f(run_lane0(R"(
  v_mov_b32 v4, 32.0
  v_log_f32 v10, v4
)")), 5.0f, 1e-5);
  EXPECT_NEAR(as_f(run_lane0(R"(
  v_mov_b32 v4, 16.0
  v_rsq_f32 v10, v4
)")), 0.25f, 1e-5);
  EXPECT_NEAR(as_f(run_lane0(R"(
  v_mov_b32 v4, 2.0
  v_sqrt_f32 v10, v4
)")), std::sqrt(2.0f), 1e-5);
  EXPECT_NEAR(as_f(run_lane0(R"(
  v_mov_b32 v4, 1.0471975512
  v_sin_f32 v10, v4
)")), std::sin(1.0471975512f), 1e-5);
  EXPECT_NEAR(as_f(run_lane0(R"(
  v_mov_b32 v4, 1.0471975512
  v_cos_f32 v10, v4
)")), std::cos(1.0471975512f), 1e-5);
}

TEST(VectorOps, Conversions) {
  EXPECT_FLOAT_EQ(as_f(run_lane0(R"(
  v_mov_b32 v4, -7
  v_cvt_f32_i32 v10, v4
)")), -7.0f);
  EXPECT_EQ(run_lane0(R"(
  v_mov_b32 v4, -2.9
  v_cvt_i32_f32 v10, v4
)"), static_cast<std::uint32_t>(-2));
  EXPECT_EQ(run_lane0(R"(
  v_mov_b32 v4, 3.99
  v_cvt_u32_f32 v10, v4
)"), 3u);
  EXPECT_EQ(run_lane0(R"(
  v_mov_b32 v4, -1.0
  v_cvt_u32_f32 v10, v4
)"), 0u);  // clamps at zero
}

TEST(VectorCmp, FloatPredicates) {
  const struct {
    const char* op;
    float a, b;
    bool expect;
  } cases[] = {
      {"v_cmp_eq_f32", 2.0f, 2.0f, true},
      {"v_cmp_neq_f32", 2.0f, 2.0f, false},
      {"v_cmp_lt_f32", 1.0f, 2.0f, true},
      {"v_cmp_le_f32", 2.0f, 2.0f, true},
      {"v_cmp_gt_f32", 1.0f, 2.0f, false},
      {"v_cmp_ge_f32", 3.0f, 2.0f, true},
  };
  for (const auto& c : cases) {
    const std::string src = "  v_mov_b32 v4, " + std::to_string(c.a) +
                            "\n  v_mov_b32 v5, " + std::to_string(c.b) +
                            "\n  " + c.op + R"( vcc, v4, v5
  v_cndmask_b32 v10, 0, 1
)";
    EXPECT_EQ(run_lane0(src), c.expect ? 1u : 0u) << c.op;
  }
}

TEST(VectorCmp, IntPredicatesAndVccBranches) {
  EXPECT_EQ(run_lane0(R"(
  v_cmp_ne_i32 vcc, v0, v0
  s_cbranch_vccz empty
  v_mov_b32 v10, 0
  s_branch end
empty:
  v_mov_b32 v10, 1
end:
)"), 1u);
  EXPECT_EQ(run_lane0(R"(
  v_cmp_eq_i32 vcc, v0, v0
  s_cbranch_vccnz full
  v_mov_b32 v10, 0
  s_branch end
full:
  v_mov_b32 v10, 1
end:
)"), 1u);
  EXPECT_EQ(run_lane0(R"(
  v_cmp_gt_i32 vcc, v0, 200
  s_cbranch_vccz none_gt
  v_mov_b32 v10, 0
  s_branch end
none_gt:
  v_mov_b32 v10, 1
end:
)"), 1u);
}

TEST(ControlFlow, ExeczBranchSkipsDeadRegion) {
  EXPECT_EQ(run_lane0(R"(
  s_mov_b64 s8, exec
  v_cmp_gt_i32 vcc, v0, 999
  s_and_b64 exec, exec, vcc
  s_cbranch_execz dead
  v_mov_b32 v10, 0
  s_branch end
dead:
  s_mov_b64 exec, s8
  v_mov_b32 v10, 42
end:
)"), 42u);
}

TEST(Memory, ScalarLoadX2X4) {
  const auto prog = assemble(R"(
  s_mov_b32 s4, 512
  s_load_dwordx2 s8, s4, 0
  s_load_dwordx4 s12, s4, 8
  s_waitcnt 0
  s_add_i32 s16, s8, s9
  s_add_i32 s16, s16, s12
  s_add_i32 s16, s16, s13
  s_add_i32 s16, s16, s14
  s_add_i32 s16, s16, s15
  v_cmp_lt_i32 vcc, v0, 1
  s_and_b64 exec, exec, vcc
  s_mov_b32 s20, 4096
  v_mov_b32 v10, s16
  v_mov_b32 v11, 0
  global_store_dword v10, v11, s20
  s_endpgm
)");
  GpuConfig cfg;
  Gpu gpu(cfg);
  for (std::uint32_t i = 0; i < 6; ++i) gpu.memory().write32(512 + 4 * i, i + 1);
  LaunchConfig launch;
  launch.program = &prog;
  gpu.launch(launch);
  gpu.run_to_completion();
  EXPECT_EQ(gpu.memory().read32(kOut), 21u);  // 1+2+3+4+5+6
}

TEST(Memory, GlobalLoadWithOffset) {
  const auto prog = assemble(R"(
  s_mov_b32 s4, 512
  v_mov_b32 v2, 0
  global_load_dword v3, v2, s4, 8
  s_waitcnt 0
  v_cmp_lt_i32 vcc, v0, 1
  s_and_b64 exec, exec, vcc
  s_mov_b32 s20, 4096
  v_mov_b32 v11, 0
  global_store_dword v3, v11, s20
  s_endpgm
)");
  GpuConfig cfg;
  Gpu gpu(cfg);
  gpu.memory().write32(520, 0xABCD);
  LaunchConfig launch;
  launch.program = &prog;
  gpu.launch(launch);
  gpu.run_to_completion();
  EXPECT_EQ(gpu.memory().read32(kOut), 0xABCDu);
}

TEST(Lds, AtomicAddAccumulatesAcrossLanes) {
  // All lanes ds_add 1 into slot 0; lane 0 publishes the total.
  const auto prog = assemble(R"(
.lds 64
  v_mov_b32 v2, 0
  v_mov_b32 v3, 1
  ds_write_b32 v2, v2
  s_barrier
  ds_add_u32 v3, v2
  s_barrier
  v_cmp_lt_i32 vcc, v0, 1
  s_and_b64 exec, exec, vcc
  ds_read_b32 v10, v2
  s_mov_b32 s20, 4096
  v_mov_b32 v11, 0
  global_store_dword v10, v11, s20
  s_endpgm
)");
  GpuConfig cfg;
  Gpu gpu(cfg);
  LaunchConfig launch;
  launch.program = &prog;
  gpu.launch(launch);
  gpu.run_to_completion();
  EXPECT_EQ(gpu.memory().read32(kOut), 64u);
}

TEST(GraphicsLegacy, ImageSampleFetchesTexels) {
  const auto prog = assemble(R"(
  s_mov_b32 s4, 0x300
  v_mov_b32 v2, s4
  s_mov_b32 s5, 0
  v_mov_b32 v3, v0
  v_cndmask_b32 v4, v3, v3
  s_mov_b32 s6, 0x300
  v_mov_b32 v5, v0
  s_nop 0
  s_endpgm
)");
  // Direct wavefront-level test of image ops (M0-based).
  Wavefront wave(16);
  DeviceMemory mem(1 << 16);
  for (std::uint32_t i = 0; i < 64; ++i) mem.write32(0x300 + 4 * i, i * 3);
  std::vector<std::uint32_t> lds;
  ExecContext ctx{&mem, &lds};
  wave.set_m0(0x300);
  for (std::uint32_t lane = 0; lane < 64; ++lane) wave.set_vgpr(2, lane, lane);
  Instruction img;
  img.op = Opcode::IMAGE_SAMPLE;
  img.dst = Operand::vgpr(3);
  img.src0 = Operand::vgpr(2);
  wave.execute(img, ctx);
  EXPECT_EQ(wave.vgpr(3, 10), 30u);
  (void)prog;
}

TEST(GraphicsLegacy, InterpAndExport) {
  Wavefront wave(16);
  DeviceMemory mem(1 << 16);
  std::vector<std::uint32_t> lds;
  ExecContext ctx{&mem, &lds};
  for (std::uint32_t lane = 0; lane < 64; ++lane) {
    wave.set_vgpr_f(2, lane, 8.0f);
  }
  Instruction p1;
  p1.op = Opcode::V_INTERP_P1_F32;
  p1.dst = Operand::vgpr(3);
  p1.src0 = Operand::vgpr(2);
  wave.execute(p1, ctx);
  Instruction p2;
  p2.op = Opcode::V_INTERP_P2_F32;
  p2.dst = Operand::vgpr(3);
  p2.src0 = Operand::vgpr(2);
  wave.execute(p2, ctx);
  EXPECT_FLOAT_EQ(wave.vgpr_f(3, 5), 8.0f);  // 0.5*a + 0.5*a

  wave.set_m0(0x400);
  Instruction exp;
  exp.op = Opcode::EXP;
  exp.src0 = Operand::vgpr(3);
  wave.execute(exp, ctx);
  EXPECT_FLOAT_EQ(mem.read_f32(0x400 + 4 * 7), 8.0f);
}

TEST(Timing, CostsReflectPipes) {
  EXPECT_EQ(cycle_cost(Opcode::S_MOV_B32), 1u);
  EXPECT_EQ(cycle_cost(Opcode::V_ADD_F32), 4u);
  EXPECT_GT(cycle_cost(Opcode::V_EXP_F32), cycle_cost(Opcode::V_ADD_F32));
  EXPECT_GT(cycle_cost(Opcode::V_ADD_F64), cycle_cost(Opcode::V_EXP_F32));
  EXPECT_GT(cycle_cost(Opcode::GLOBAL_LOAD_DWORD),
            cycle_cost(Opcode::DS_READ_B32));
}

TEST(Wavefront, RegisterFileBoundsChecked) {
  Wavefront wave(8);
  EXPECT_THROW(wave.vgpr(8, 0), std::out_of_range);
  EXPECT_THROW(wave.set_sgpr(kNumSgprs, 0), std::out_of_range);
  EXPECT_THROW(Wavefront(0), std::invalid_argument);
  EXPECT_THROW(Wavefront(257), std::invalid_argument);
}

TEST(Wavefront, TouchTrackingForBankCoverage) {
  Wavefront wave(64);
  wave.set_vgpr(40, 3, 1);
  wave.set_sgpr(30, 2);
  EXPECT_EQ(wave.max_vgpr_touched(), 40u);
  EXPECT_EQ(wave.max_sgpr_touched(), 30u);
}

// ===========================================================================
// Differential fuzzing: cycle backend vs fast-path backend.
//
// Programs are fault-free by construction — every vector memory address is
// masked into a known-good window, LDS offsets are masked and aligned,
// branches are forward skips or literal-bounded loops, and every path ends
// in s_endpgm — so a divergence can only mean an interpreter bug, never an
// expected fault. The epilogue re-enables all lanes and dumps every live
// VGPR plus the captured EXEC/VCC/SCC state to per-lane memory slots, so
// register state that never touched memory still gets compared.
//
// Register conventions (the generator never violates these):
//   v0/v1  launch ABI (lane id, wave-global id)   v2  address scratch
//   v3..   data scratch                           s0-s3 launch ABI
//   s4-s15 data scratch    s16/s17 EXEC save      s20-s23 epilogue captures
//   s24 load/store window  s25 epilogue base      s26 temp  s30 loop counter

struct FuzzShape {
  bool branchy = false;
  /// Restrict control flow to wave-uniform (scalar-literal) conditions so
  /// multi-wave workgroups cannot diverge around a barrier.
  bool uniform_only = false;
  bool barriers = false;
  /// Concurrent workgroups on several CUs interleave differently between
  /// the backends, so body stores (which would race) are disabled there;
  /// the per-workgroup epilogue windows stay disjoint.
  bool body_stores = true;
  std::uint32_t waves = 1;
  std::uint32_t workgroups = 1;
  std::uint32_t num_cus = 1;
};

class ProgramFuzzer {
 public:
  ProgramFuzzer(std::uint32_t seed, const FuzzShape& shape)
      : rng_(seed), shape_(shape), nv_(10 + static_cast<int>(rng_() % 7)) {}

  std::string generate() {
    out_.clear();
    prologue();
    const int chunks = shape_.branchy ? 3 + pick(5) : 1;
    for (int i = 0; i < chunks; ++i) emit_chunk(i);
    epilogue();
    return out_;
  }

 private:
  int pick(int n) { return static_cast<int>(rng_() % static_cast<unsigned>(n)); }
  std::string vr() { return "v" + std::to_string(3 + pick(nv_ - 3)); }
  std::string vpair() { return "v" + std::to_string(4 + 2 * pick((nv_ - 5) / 2)); }
  std::string sr() { return "s" + std::to_string(4 + pick(12)); }
  std::string spair() { return "s" + std::to_string(4 + 2 * pick(6)); }

  std::string lit() {
    switch (pick(5)) {
      case 0: return std::to_string(pick(256));
      case 1: return std::to_string(-pick(128));
      case 2: {
        char buf[16];
        std::snprintf(buf, sizeof buf, "0x%08X", static_cast<unsigned>(rng_()));
        return buf;
      }
      case 3: {
        static const char* floats[] = {"0.5",   "-1.25",    "3.0",
                                       "100.0", "-0.03125", "1.5"};
        return floats[pick(6)];
      }
      default: return std::to_string(pick(32));
    }
  }

  /// A per-lane-readable operand: VGPR, SGPR, or literal.
  std::string vsrc() {
    const int k = pick(5);
    if (k < 3) return vr();
    if (k == 3) return sr();
    return lit();
  }
  std::string ssrc() { return pick(3) < 2 ? sr() : lit(); }

  void line(const std::string& s) { out_ += "  " + s + "\n"; }
  void label(const std::string& l) { out_ += l + ":\n"; }

  void prologue() {
    line("s_mov_b32 s24, 0x1000");
    line("s_mov_b32 s25, 0x2000");
    // Each workgroup gets a 32 KiB result window. The epilogue dumps up to
    // 23 slots of 1 KiB each (13 vgprs + 10 sgprs), so a narrower stride
    // would let workgroup N's sgpr dump alias workgroup N+1's vgpr slots
    // and the final bytes would depend on inter-workgroup store order --
    // which legitimately differs between a 2-CU cycle run and the fast
    // backend's sequential replay.
    line("s_lshl_b32 s26, s1, 15");
    line("s_add_i32 s25, s25, s26");
    for (int r = 3; r < nv_; ++r) {
      const std::string reg = "v" + std::to_string(r);
      switch (pick(3)) {
        case 0: line("v_mov_b32 " + reg + ", " + lit()); break;
        case 1:
          line("v_mul_lo_i32 " + reg + ", v1, " + std::to_string(2 * r + 1));
          break;
        default: line("v_cvt_f32_u32 " + reg + ", v1"); break;
      }
    }
    for (int s = 4; s < 16; ++s) {
      line("s_mov_b32 s" + std::to_string(s) + ", " + lit());
    }
  }

  void emit_chunk(int index) {
    const std::string tag = std::to_string(index);
    const int kind = shape_.branchy ? pick(5) : 0;
    if (shape_.barriers && kind == 4) {
      line("s_barrier");
      emit_body(2 + pick(5));
      return;
    }
    switch (shape_.branchy ? kind % 4 : 0) {
      case 1: {  // literal-bounded loop (wave-uniform)
        line("s_mov_b32 s30, 0");
        label("loop" + tag);
        emit_body(2 + pick(6));
        line("s_add_i32 s30, s30, 1");
        line("s_cmp_lt_i32 s30, " + std::to_string(2 + pick(3)));
        line("s_cbranch_scc1 loop" + tag);
        break;
      }
      case 2: {  // forward skip
        if (shape_.uniform_only || pick(2) == 0) {
          line("s_cmp_lt_i32 " + sr() + ", " + std::to_string(pick(64)));
          line(std::string(pick(2) ? "s_cbranch_scc1" : "s_cbranch_scc0") +
               " skip" + tag);
        } else {
          line(std::string(pick(2) ? "v_cmp_lt_i32" : "v_cmp_gt_i32") +
               " vcc, " + vr() + ", " + vsrc());
          line(std::string(pick(2) ? "s_cbranch_vccz" : "s_cbranch_vccnz") +
               " skip" + tag);
        }
        emit_body(1 + pick(6));
        label("skip" + tag);
        break;
      }
      case 3: {  // EXEC-narrowed divergent region
        if (shape_.uniform_only) {
          emit_body(2 + pick(6));
          break;
        }
        line("s_mov_b64 s16, exec");
        line("v_cmp_lt_i32 vcc, " + vr() + ", " + vsrc());
        line("s_and_b64 exec, exec, vcc");
        if (pick(2)) line("s_cbranch_execz join" + tag);
        emit_body(1 + pick(5));
        label("join" + tag);
        line("s_mov_b64 exec, s16");
        break;
      }
      default: emit_body(3 + pick(7)); break;
    }
  }

  void emit_body(int count) {
    for (int i = 0; i < count; ++i) emit_instruction();
  }

  void emit_instruction() {
    switch (pick(12)) {
      case 0: {  // VALU unary
        static const char* ops[] = {
            "v_mov_b32",     "v_not_b32",     "v_cvt_f32_i32",
            "v_cvt_i32_f32", "v_cvt_f32_u32", "v_cvt_u32_f32",
            "v_floor_f32",   "v_fract_f32",   "v_rcp_f32",
            "v_rsq_f32",     "v_sqrt_f32",    "v_exp_f32",
            "v_log_f32",     "v_sin_f32",     "v_cos_f32"};
        line(std::string(ops[pick(15)]) + " " + vr() + ", " + vsrc());
        break;
      }
      case 1:
      case 2: {  // VALU binary
        static const char* ops[] = {
            "v_add_f32",    "v_sub_f32",    "v_mul_f32",    "v_mac_f32",
            "v_min_f32",    "v_max_f32",    "v_add_i32",    "v_sub_i32",
            "v_mul_lo_i32", "v_mul_hi_u32", "v_lshlrev_b32", "v_lshrrev_b32",
            "v_ashrrev_i32", "v_and_b32",   "v_or_b32",     "v_xor_b32",
            "v_min_i32",    "v_max_i32",    "v_cndmask_b32"};
        line(std::string(ops[pick(19)]) + " " + vr() + ", " + vsrc() + ", " +
             vsrc());
        break;
      }
      case 3: {  // VALU ternary / f64
        switch (pick(4)) {
          case 0:
            line("v_mad_f32 " + vr() + ", " + vsrc() + ", " + vsrc() + ", " +
                 vsrc());
            break;
          case 1:
            line("v_fma_f32 " + vr() + ", " + vsrc() + ", " + vsrc() + ", " +
                 vsrc());
            break;
          case 2:
            line(std::string(pick(2) ? "v_add_f64" : "v_mul_f64") + " " +
                 vpair() + ", " + vpair() + ", " + vpair());
            break;
          default:
            line("v_cvt_f64_f32 " + vpair() + ", " + vsrc());
            line("v_cvt_f32_f64 " + vr() + ", " + vpair());
            break;
        }
        break;
      }
      case 4: {  // scalar unary / mov
        switch (pick(3)) {
          case 0: line("s_mov_b32 " + sr() + ", " + ssrc()); break;
          case 1: line("s_not_b32 " + sr() + ", " + ssrc()); break;
          default:
            line("s_movk_i32 " + sr() + ", " +
                 std::to_string(pick(0x8000) - 0x4000));
            break;
        }
        break;
      }
      case 5:
      case 6: {  // scalar binary
        static const char* ops[] = {"s_add_i32",  "s_sub_i32", "s_mul_i32",
                                    "s_and_b32",  "s_or_b32",  "s_xor_b32",
                                    "s_lshl_b32", "s_lshr_b32", "s_ashr_i32",
                                    "s_min_i32",  "s_max_i32"};
        line(std::string(ops[pick(11)]) + " " + sr() + ", " + ssrc() + ", " +
             ssrc());
        break;
      }
      case 7: {  // 64-bit scalar logic on SGPR pairs
        static const char* ops[] = {"s_and_b64", "s_or_b64", "s_andn2_b64"};
        const std::string src1 =
            (!shape_.uniform_only && pick(4) == 0) ? "exec" : spair();
        line(std::string(ops[pick(3)]) + " " + spair() + ", " + src1 + ", " +
             spair());
        break;
      }
      case 8: {  // compares
        if (pick(2)) {
          static const char* ops[] = {"v_cmp_eq_f32", "v_cmp_lt_f32",
                                      "v_cmp_gt_f32", "v_cmp_eq_i32",
                                      "v_cmp_ne_i32", "v_cmp_lt_i32",
                                      "v_cmp_gt_i32", "v_cmp_ge_f32"};
          line(std::string(ops[pick(8)]) + " vcc, " + vr() + ", " + vsrc());
        } else {
          static const char* ops[] = {"s_cmp_eq_i32", "s_cmp_lg_i32",
                                      "s_cmp_gt_i32", "s_cmp_lt_i32"};
          line(std::string(ops[pick(4)]) + " " + sr() + ", " + ssrc());
        }
        break;
      }
      case 9: {  // global load (masked into the seeded window)
        line("v_and_b32 v2, " + vr() + ", 0x3FC");
        line("global_load_dword " + vr() + ", v2, s24, " +
             std::to_string(4 * pick(16)));
        if (pick(3) == 0) line("s_waitcnt 0");
        break;
      }
      case 10: {  // global store / LDS traffic
        if (shape_.body_stores && pick(2)) {
          line("v_and_b32 v2, " + vr() + ", 0x3FC");
          line("global_store_dword " + vr() + ", v2, s24, " +
               std::to_string(4 * pick(16)));
        } else {
          line("v_and_b32 v2, " + vr() + ", 0x3FC");
          static const char* ops[] = {"ds_write_b32", "ds_read_b32",
                                      "ds_add_u32"};
          line(std::string(ops[pick(3)]) + " " + vr() + ", v2, " +
               std::to_string(4 * pick(8)));
        }
        break;
      }
      default: {
        if (pick(2)) {
          line("s_nop 0");
        } else {
          line("v_lshlrev_b32 " + vr() + ", " + std::to_string(pick(31)) +
               ", " + vsrc());
        }
        break;
      }
    }
  }

  void epilogue() {
    line("s_mov_b64 s20, exec");
    line("s_mov_b32 s22, vcc");
    // SCC has no operand encoding; materialize it through the branch it
    // feeds so the final flag state is still compared.
    line("s_cbranch_scc1 sccone");
    line("s_mov_b32 s23, 0");
    line("s_branch sccdone");
    label("sccone");
    line("s_mov_b32 s23, 1");
    label("sccdone");
    line("s_not_b64 exec, 0");  // all 64 lanes on for the dump
    line("v_lshlrev_b32 v2, 2, v1");
    int slot = 0;
    for (int r = 3; r < nv_; ++r) {
      line("global_store_dword v" + std::to_string(r) + ", v2, s25, " +
           std::to_string(0x400 * slot++));
    }
    static const int dumped_sgprs[] = {16, 17, 20, 21, 22, 23, 4, 5, 6, 7};
    for (const int s : dumped_sgprs) {
      line("v_mov_b32 v3, s" + std::to_string(s));
      line("global_store_dword v3, v2, s25, " + std::to_string(0x400 * slot++));
    }
    line("s_endpgm");
  }

  std::mt19937 rng_;
  FuzzShape shape_;
  int nv_;
  std::string out_;
};

struct FuzzRun {
  std::uint64_t cycles = 0;
  std::uint64_t issued = 0;
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t fast_launches = 0;
  std::vector<std::uint32_t> mem;
};

FuzzRun run_fuzz_case(const Program& prog, GpuBackend backend,
                      const FuzzShape& shape) {
  GpuConfig cfg;
  cfg.num_cus = shape.num_cus;
  // 128 KiB: room for three non-overlapping 32 KiB workgroup result
  // windows above the 0x2000 base (see ProgramFuzzer::prologue).
  cfg.memory_bytes = 1u << 17;
  cfg.backend = backend;
  Gpu gpu(cfg);
  for (std::uint32_t a = 0x1000; a < 0x1440; a += 4) {
    gpu.memory().write32(a, a * 2654435761u);
  }
  LaunchConfig launch;
  launch.program = &prog;
  launch.workgroups = shape.workgroups;
  launch.waves_per_group = shape.waves;
  gpu.launch(launch);
  gpu.run_to_completion();
  FuzzRun r;
  r.cycles = gpu.last_launch_cycles();
  r.issued = gpu.instructions_issued();
  r.fast_launches = gpu.fast_launches();
  r.reads = gpu.memory().reads();
  r.writes = gpu.memory().writes();
  r.mem.resize(gpu.memory().size() / 4);
  gpu.memory().read_block(0, r.mem.data(), r.mem.size());
  return r;
}

void fuzz_backends(std::uint32_t seed_base, int cases, const FuzzShape& shape) {
  for (int i = 0; i < cases; ++i) {
    const std::uint32_t seed = seed_base + static_cast<std::uint32_t>(i);
    ProgramFuzzer fuzzer(seed, shape);
    const std::string src = fuzzer.generate();
    Program prog;
    ASSERT_NO_THROW(prog = assemble(src)) << "seed " << seed << "\n" << src;
    const FuzzRun cycle = run_fuzz_case(prog, GpuBackend::kCycle, shape);
    const FuzzRun fast = run_fuzz_case(prog, GpuBackend::kFast, shape);
    // The whole point: the generated program must be inside the fast
    // subset — a fallback would compare the oracle against itself.
    ASSERT_EQ(fast.fast_launches, 1u) << "seed " << seed << "\n" << src;
    ASSERT_EQ(cycle.fast_launches, 0u);
    ASSERT_EQ(cycle.cycles, fast.cycles) << "seed " << seed << "\n" << src;
    ASSERT_EQ(cycle.issued, fast.issued) << "seed " << seed << "\n" << src;
    ASSERT_EQ(cycle.reads, fast.reads) << "seed " << seed << "\n" << src;
    ASSERT_EQ(cycle.writes, fast.writes) << "seed " << seed << "\n" << src;
    ASSERT_EQ(cycle.mem, fast.mem) << "seed " << seed << "\n" << src;
  }
}

TEST(BackendFuzz, StraightLinePrograms) {
  FuzzShape shape;
  fuzz_backends(0x5EED0000, 400, shape);
}

TEST(BackendFuzz, BranchyPrograms) {
  FuzzShape shape;
  shape.branchy = true;
  fuzz_backends(0x5EED1000, 400, shape);
}

TEST(BackendFuzz, MultiWaveUniformControlFlow) {
  FuzzShape shape;
  shape.branchy = true;
  shape.uniform_only = true;
  shape.barriers = true;
  shape.waves = 4;
  fuzz_backends(0x5EED2000, 150, shape);
}

TEST(BackendFuzz, MultiWorkgroupSerializedOnOneCu) {
  FuzzShape shape;
  shape.branchy = true;
  shape.workgroups = 3;
  fuzz_backends(0x5EED3000, 150, shape);
}

TEST(BackendFuzz, MultiWorkgroupAcrossCus) {
  FuzzShape shape;
  shape.branchy = true;
  shape.workgroups = 3;
  shape.num_cus = 2;
  shape.body_stores = false;
  fuzz_backends(0x5EED4000, 100, shape);
}

}  // namespace
}  // namespace rtad::gpgpu
