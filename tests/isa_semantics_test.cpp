// Exhaustive interpreter-semantics tests: every opcode family is exercised
// with known operands and checked against reference results, including the
// graphics-legacy pipes that exist only as trim candidates.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>

#include "rtad/gpgpu/assembler.hpp"
#include "rtad/gpgpu/gpu.hpp"

namespace rtad::gpgpu {
namespace {

constexpr std::uint32_t kOut = 4096;

/// Run a fragment with a store-from-lane0 epilogue appended: the fragment
/// must leave its result in v10 (bits) for lane 0.
std::uint32_t run_lane0(const std::string& fragment) {
  const std::string src = fragment + R"(
  v_cmp_lt_i32 vcc, v0, 1
  s_and_b64 exec, exec, vcc
  s_mov_b32 s20, 4096
  v_mov_b32 v11, 0
  global_store_dword v10, v11, s20
  s_endpgm
)";
  const auto prog = assemble(src);
  GpuConfig cfg;
  Gpu gpu(cfg);
  LaunchConfig launch;
  launch.program = &prog;
  gpu.launch(launch);
  gpu.run_to_completion();
  return gpu.memory().read32(kOut);
}

float as_f(std::uint32_t bits) {
  float f;
  std::memcpy(&f, &bits, 4);
  return f;
}

TEST(ScalarOps, LogicalAndShifts) {
  EXPECT_EQ(run_lane0(R"(
  s_mov_b32 s4, 0xF0F0
  s_mov_b32 s5, 0x0FF0
  s_and_b32 s6, s4, s5
  v_mov_b32 v10, s6
)"), 0x0FF0u & 0xF0F0u);
  EXPECT_EQ(run_lane0(R"(
  s_mov_b32 s4, 0xF0F0
  s_or_b32 s6, s4, 0x000F
  v_mov_b32 v10, s6
)"), 0xF0FFu);
  EXPECT_EQ(run_lane0(R"(
  s_mov_b32 s4, 0xFF00
  s_xor_b32 s6, s4, 0x0F00
  v_mov_b32 v10, s6
)"), 0xF000u);
  EXPECT_EQ(run_lane0(R"(
  s_mov_b32 s4, 0x80000000
  s_lshr_b32 s6, s4, 4
  v_mov_b32 v10, s6
)"), 0x08000000u);
  EXPECT_EQ(run_lane0(R"(
  s_mov_b32 s4, 0x80000000
  s_ashr_i32 s6, s4, 4
  v_mov_b32 v10, s6
)"), 0xF8000000u);
  EXPECT_EQ(run_lane0(R"(
  s_mov_b32 s4, 0x0000FFFF
  s_not_b32 s6, s4
  v_mov_b32 v10, s6
)"), 0xFFFF0000u);
}

TEST(ScalarOps, MinMax) {
  EXPECT_EQ(run_lane0(R"(
  s_mov_b32 s4, -5
  s_mov_b32 s5, 3
  s_min_i32 s6, s4, s5
  v_mov_b32 v10, s6
)"), static_cast<std::uint32_t>(-5));
  EXPECT_EQ(run_lane0(R"(
  s_mov_b32 s4, -5
  s_mov_b32 s5, 3
  s_max_i32 s6, s4, s5
  v_mov_b32 v10, s6
)"), 3u);
}

TEST(ScalarOps, MovkSignExtends) {
  EXPECT_EQ(run_lane0(R"(
  s_movk_i32 s4, -2
  v_mov_b32 v10, s4
)"), 0xFFFFFFFEu);
}

TEST(ScalarOps, CompareVariants) {
  // Each compare drives a conditional branch; result 1 = taken.
  const char* templates[] = {
      "s_cmp_eq_i32 s4, 7",  "s_cmp_lg_i32 s4, 3",  "s_cmp_gt_i32 s4, 3",
      "s_cmp_ge_i32 s4, 7",  "s_cmp_lt_i32 s4, 9",  "s_cmp_le_i32 s4, 7",
  };
  for (const char* cmp : templates) {
    const std::string src = std::string(R"(
  s_mov_b32 s4, 7
  )") + cmp + R"(
  s_cbranch_scc1 yes
  v_mov_b32 v10, 0
  s_branch end
yes:
  v_mov_b32 v10, 1
end:
)";
    EXPECT_EQ(run_lane0(src), 1u) << cmp;
  }
}

TEST(Scalar64, ExecManipulation) {
  // Save, narrow, restore EXEC through SGPR pairs and 64-bit logic.
  EXPECT_EQ(run_lane0(R"(
  s_mov_b64 s8, exec
  s_not_b64 s10, s8
  s_or_b64 s12, s8, s10
  s_andn2_b64 s14, s12, s10
  s_mov_b64 exec, s14
  v_mov_b32 v10, 77
)"), 77u);
}

TEST(VectorOps, IntArithmetic) {
  EXPECT_EQ(run_lane0(R"(
  v_mov_b32 v4, 100
  v_sub_i32 v5, v4, 58
  v_mov_b32 v10, v5
)"), 42u);
  EXPECT_EQ(run_lane0(R"(
  v_mov_b32 v4, 0x10001
  v_mul_lo_i32 v5, v4, v4
  v_mov_b32 v10, v5
)"), 0x10001u * 0x10001u);
  EXPECT_EQ(run_lane0(R"(
  v_mov_b32 v4, 0x80000000
  v_mul_hi_u32 v5, v4, 4
  v_mov_b32 v10, v5
)"), 2u);
  EXPECT_EQ(run_lane0(R"(
  v_mov_b32 v4, 0xF0
  v_lshrrev_b32 v5, 4, v4
  v_mov_b32 v10, v5
)"), 0xFu);
  EXPECT_EQ(run_lane0(R"(
  v_mov_b32 v4, 0x80000000
  v_ashrrev_i32 v5, 8, v4
  v_mov_b32 v10, v5
)"), 0xFF800000u);
  EXPECT_EQ(run_lane0(R"(
  v_mov_b32 v4, 0xAA
  v_xor_b32 v5, v4, 0xFF
  v_or_b32 v5, v5, 0x100
  v_and_b32 v5, v5, 0x1FF
  v_mov_b32 v10, v5
)"), 0x155u);
  EXPECT_EQ(run_lane0(R"(
  v_mov_b32 v4, -9
  v_max_i32 v5, v4, 2
  v_min_i32 v6, v5, 1
  v_mov_b32 v10, v6
)"), 1u);
  EXPECT_EQ(run_lane0(R"(
  v_mov_b32 v4, 0x0F
  v_not_b32 v10, v4
)"), 0xFFFFFFF0u);
}

TEST(VectorOps, FloatReference) {
  EXPECT_FLOAT_EQ(as_f(run_lane0(R"(
  v_mov_b32 v4, 2.5
  v_mov_b32 v5, 4.0
  v_mad_f32 v10, v4, v5, 1.5
)")), 11.5f);
  EXPECT_FLOAT_EQ(as_f(run_lane0(R"(
  v_mov_b32 v4, 2.5
  v_fma_f32 v10, v4, v4, 0.75
)")), std::fma(2.5f, 2.5f, 0.75f));
  EXPECT_FLOAT_EQ(as_f(run_lane0(R"(
  v_mov_b32 v4, -3.75
  v_floor_f32 v10, v4
)")), -4.0f);
  EXPECT_FLOAT_EQ(as_f(run_lane0(R"(
  v_mov_b32 v4, 3.75
  v_fract_f32 v10, v4
)")), 0.75f);
  EXPECT_FLOAT_EQ(as_f(run_lane0(R"(
  v_mov_b32 v4, 2.25
  v_min_f32 v5, v4, 9.0
  v_max_f32 v10, v5, 1.0
)")), 2.25f);
}

TEST(VectorOps, Transcendentals) {
  EXPECT_NEAR(as_f(run_lane0(R"(
  v_mov_b32 v4, 3.0
  v_exp_f32 v10, v4
)")), 8.0f, 1e-5);
  EXPECT_NEAR(as_f(run_lane0(R"(
  v_mov_b32 v4, 32.0
  v_log_f32 v10, v4
)")), 5.0f, 1e-5);
  EXPECT_NEAR(as_f(run_lane0(R"(
  v_mov_b32 v4, 16.0
  v_rsq_f32 v10, v4
)")), 0.25f, 1e-5);
  EXPECT_NEAR(as_f(run_lane0(R"(
  v_mov_b32 v4, 2.0
  v_sqrt_f32 v10, v4
)")), std::sqrt(2.0f), 1e-5);
  EXPECT_NEAR(as_f(run_lane0(R"(
  v_mov_b32 v4, 1.0471975512
  v_sin_f32 v10, v4
)")), std::sin(1.0471975512f), 1e-5);
  EXPECT_NEAR(as_f(run_lane0(R"(
  v_mov_b32 v4, 1.0471975512
  v_cos_f32 v10, v4
)")), std::cos(1.0471975512f), 1e-5);
}

TEST(VectorOps, Conversions) {
  EXPECT_FLOAT_EQ(as_f(run_lane0(R"(
  v_mov_b32 v4, -7
  v_cvt_f32_i32 v10, v4
)")), -7.0f);
  EXPECT_EQ(run_lane0(R"(
  v_mov_b32 v4, -2.9
  v_cvt_i32_f32 v10, v4
)"), static_cast<std::uint32_t>(-2));
  EXPECT_EQ(run_lane0(R"(
  v_mov_b32 v4, 3.99
  v_cvt_u32_f32 v10, v4
)"), 3u);
  EXPECT_EQ(run_lane0(R"(
  v_mov_b32 v4, -1.0
  v_cvt_u32_f32 v10, v4
)"), 0u);  // clamps at zero
}

TEST(VectorCmp, FloatPredicates) {
  const struct {
    const char* op;
    float a, b;
    bool expect;
  } cases[] = {
      {"v_cmp_eq_f32", 2.0f, 2.0f, true},
      {"v_cmp_neq_f32", 2.0f, 2.0f, false},
      {"v_cmp_lt_f32", 1.0f, 2.0f, true},
      {"v_cmp_le_f32", 2.0f, 2.0f, true},
      {"v_cmp_gt_f32", 1.0f, 2.0f, false},
      {"v_cmp_ge_f32", 3.0f, 2.0f, true},
  };
  for (const auto& c : cases) {
    const std::string src = "  v_mov_b32 v4, " + std::to_string(c.a) +
                            "\n  v_mov_b32 v5, " + std::to_string(c.b) +
                            "\n  " + c.op + R"( vcc, v4, v5
  v_cndmask_b32 v10, 0, 1
)";
    EXPECT_EQ(run_lane0(src), c.expect ? 1u : 0u) << c.op;
  }
}

TEST(VectorCmp, IntPredicatesAndVccBranches) {
  EXPECT_EQ(run_lane0(R"(
  v_cmp_ne_i32 vcc, v0, v0
  s_cbranch_vccz empty
  v_mov_b32 v10, 0
  s_branch end
empty:
  v_mov_b32 v10, 1
end:
)"), 1u);
  EXPECT_EQ(run_lane0(R"(
  v_cmp_eq_i32 vcc, v0, v0
  s_cbranch_vccnz full
  v_mov_b32 v10, 0
  s_branch end
full:
  v_mov_b32 v10, 1
end:
)"), 1u);
  EXPECT_EQ(run_lane0(R"(
  v_cmp_gt_i32 vcc, v0, 200
  s_cbranch_vccz none_gt
  v_mov_b32 v10, 0
  s_branch end
none_gt:
  v_mov_b32 v10, 1
end:
)"), 1u);
}

TEST(ControlFlow, ExeczBranchSkipsDeadRegion) {
  EXPECT_EQ(run_lane0(R"(
  s_mov_b64 s8, exec
  v_cmp_gt_i32 vcc, v0, 999
  s_and_b64 exec, exec, vcc
  s_cbranch_execz dead
  v_mov_b32 v10, 0
  s_branch end
dead:
  s_mov_b64 exec, s8
  v_mov_b32 v10, 42
end:
)"), 42u);
}

TEST(Memory, ScalarLoadX2X4) {
  const auto prog = assemble(R"(
  s_mov_b32 s4, 512
  s_load_dwordx2 s8, s4, 0
  s_load_dwordx4 s12, s4, 8
  s_waitcnt 0
  s_add_i32 s16, s8, s9
  s_add_i32 s16, s16, s12
  s_add_i32 s16, s16, s13
  s_add_i32 s16, s16, s14
  s_add_i32 s16, s16, s15
  v_cmp_lt_i32 vcc, v0, 1
  s_and_b64 exec, exec, vcc
  s_mov_b32 s20, 4096
  v_mov_b32 v10, s16
  v_mov_b32 v11, 0
  global_store_dword v10, v11, s20
  s_endpgm
)");
  GpuConfig cfg;
  Gpu gpu(cfg);
  for (std::uint32_t i = 0; i < 6; ++i) gpu.memory().write32(512 + 4 * i, i + 1);
  LaunchConfig launch;
  launch.program = &prog;
  gpu.launch(launch);
  gpu.run_to_completion();
  EXPECT_EQ(gpu.memory().read32(kOut), 21u);  // 1+2+3+4+5+6
}

TEST(Memory, GlobalLoadWithOffset) {
  const auto prog = assemble(R"(
  s_mov_b32 s4, 512
  v_mov_b32 v2, 0
  global_load_dword v3, v2, s4, 8
  s_waitcnt 0
  v_cmp_lt_i32 vcc, v0, 1
  s_and_b64 exec, exec, vcc
  s_mov_b32 s20, 4096
  v_mov_b32 v11, 0
  global_store_dword v3, v11, s20
  s_endpgm
)");
  GpuConfig cfg;
  Gpu gpu(cfg);
  gpu.memory().write32(520, 0xABCD);
  LaunchConfig launch;
  launch.program = &prog;
  gpu.launch(launch);
  gpu.run_to_completion();
  EXPECT_EQ(gpu.memory().read32(kOut), 0xABCDu);
}

TEST(Lds, AtomicAddAccumulatesAcrossLanes) {
  // All lanes ds_add 1 into slot 0; lane 0 publishes the total.
  const auto prog = assemble(R"(
.lds 64
  v_mov_b32 v2, 0
  v_mov_b32 v3, 1
  ds_write_b32 v2, v2
  s_barrier
  ds_add_u32 v3, v2
  s_barrier
  v_cmp_lt_i32 vcc, v0, 1
  s_and_b64 exec, exec, vcc
  ds_read_b32 v10, v2
  s_mov_b32 s20, 4096
  v_mov_b32 v11, 0
  global_store_dword v10, v11, s20
  s_endpgm
)");
  GpuConfig cfg;
  Gpu gpu(cfg);
  LaunchConfig launch;
  launch.program = &prog;
  gpu.launch(launch);
  gpu.run_to_completion();
  EXPECT_EQ(gpu.memory().read32(kOut), 64u);
}

TEST(GraphicsLegacy, ImageSampleFetchesTexels) {
  const auto prog = assemble(R"(
  s_mov_b32 s4, 0x300
  v_mov_b32 v2, s4
  s_mov_b32 s5, 0
  v_mov_b32 v3, v0
  v_cndmask_b32 v4, v3, v3
  s_mov_b32 s6, 0x300
  v_mov_b32 v5, v0
  s_nop 0
  s_endpgm
)");
  // Direct wavefront-level test of image ops (M0-based).
  Wavefront wave(16);
  DeviceMemory mem(1 << 16);
  for (std::uint32_t i = 0; i < 64; ++i) mem.write32(0x300 + 4 * i, i * 3);
  std::vector<std::uint32_t> lds;
  ExecContext ctx{&mem, &lds};
  wave.set_m0(0x300);
  for (std::uint32_t lane = 0; lane < 64; ++lane) wave.set_vgpr(2, lane, lane);
  Instruction img;
  img.op = Opcode::IMAGE_SAMPLE;
  img.dst = Operand::vgpr(3);
  img.src0 = Operand::vgpr(2);
  wave.execute(img, ctx);
  EXPECT_EQ(wave.vgpr(3, 10), 30u);
  (void)prog;
}

TEST(GraphicsLegacy, InterpAndExport) {
  Wavefront wave(16);
  DeviceMemory mem(1 << 16);
  std::vector<std::uint32_t> lds;
  ExecContext ctx{&mem, &lds};
  for (std::uint32_t lane = 0; lane < 64; ++lane) {
    wave.set_vgpr_f(2, lane, 8.0f);
  }
  Instruction p1;
  p1.op = Opcode::V_INTERP_P1_F32;
  p1.dst = Operand::vgpr(3);
  p1.src0 = Operand::vgpr(2);
  wave.execute(p1, ctx);
  Instruction p2;
  p2.op = Opcode::V_INTERP_P2_F32;
  p2.dst = Operand::vgpr(3);
  p2.src0 = Operand::vgpr(2);
  wave.execute(p2, ctx);
  EXPECT_FLOAT_EQ(wave.vgpr_f(3, 5), 8.0f);  // 0.5*a + 0.5*a

  wave.set_m0(0x400);
  Instruction exp;
  exp.op = Opcode::EXP;
  exp.src0 = Operand::vgpr(3);
  wave.execute(exp, ctx);
  EXPECT_FLOAT_EQ(mem.read_f32(0x400 + 4 * 7), 8.0f);
}

TEST(Timing, CostsReflectPipes) {
  EXPECT_EQ(cycle_cost(Opcode::S_MOV_B32), 1u);
  EXPECT_EQ(cycle_cost(Opcode::V_ADD_F32), 4u);
  EXPECT_GT(cycle_cost(Opcode::V_EXP_F32), cycle_cost(Opcode::V_ADD_F32));
  EXPECT_GT(cycle_cost(Opcode::V_ADD_F64), cycle_cost(Opcode::V_EXP_F32));
  EXPECT_GT(cycle_cost(Opcode::GLOBAL_LOAD_DWORD),
            cycle_cost(Opcode::DS_READ_B32));
}

TEST(Wavefront, RegisterFileBoundsChecked) {
  Wavefront wave(8);
  EXPECT_THROW(wave.vgpr(8, 0), std::out_of_range);
  EXPECT_THROW(wave.set_sgpr(kNumSgprs, 0), std::out_of_range);
  EXPECT_THROW(Wavefront(0), std::invalid_argument);
  EXPECT_THROW(Wavefront(257), std::invalid_argument);
}

TEST(Wavefront, TouchTrackingForBankCoverage) {
  Wavefront wave(64);
  wave.set_vgpr(40, 3, 1);
  wave.set_sgpr(30, 2);
  EXPECT_EQ(wave.max_vgpr_touched(), 40u);
  EXPECT_EQ(wave.max_sgpr_touched(), 30u);
}

}  // namespace
}  // namespace rtad::gpgpu
