// Device-kernel tests: ELM/LSTM inference on the GPGPU must agree with the
// host reference models, and the kernels' merged coverage must equal the
// committed ML ISA surface (the trimming contract).
#include <gtest/gtest.h>

#include <cmath>

#include "rtad/gpgpu/rtl_inventory.hpp"
#include "rtad/ml/dataset.hpp"
#include "rtad/ml/kernel_compiler.hpp"
#include "rtad/ml/kernels.hpp"
#include "rtad/ml/mlp.hpp"
#include "rtad/sim/rng.hpp"
#include "rtad/workloads/spec_model.hpp"

namespace rtad::ml {
namespace {

using gpgpu::Gpu;
using gpgpu::GpuConfig;

Elm small_trained_elm(std::uint32_t hidden = 320) {
  const auto& p = workloads::find_profile("gcc");
  DatasetBuilder builder(p, 21);
  auto ds = builder.collect_elm(200);
  ElmConfig cfg;
  cfg.input_dim = builder.config().elm_vocab;
  cfg.hidden = hidden;
  Elm elm(cfg);
  elm.train(ds.windows);
  return elm;
}

std::vector<std::uint32_t> counts_payload(const Vector& x,
                                          std::uint32_t window) {
  std::vector<std::uint32_t> payload;
  payload.reserve(x.size());
  for (const float v : x) {
    payload.push_back(
        static_cast<std::uint32_t>(std::lround(v * static_cast<float>(window))));
  }
  return payload;
}

TEST(ElmKernels, DeviceScoreMatchesHost) {
  const auto& p = workloads::find_profile("gcc");
  DatasetBuilder builder(p, 23);
  auto ds = builder.collect_elm(120);
  ElmConfig cfg;
  cfg.input_dim = builder.config().elm_vocab;
  cfg.hidden = 128;
  Elm elm(cfg);
  std::vector<Vector> train(ds.windows.begin(), ds.windows.begin() + 100);
  elm.train(train);

  Threshold threshold(1e9f);  // decision path tested separately
  const auto image =
      compile_elm(elm, threshold, builder.config().elm_window);

  GpuConfig gcfg;
  gcfg.num_cus = 5;
  Gpu gpu(gcfg);
  load_image(gpu, image);

  for (std::size_t i = 100; i < 110; ++i) {
    const auto payload =
        counts_payload(ds.windows[i], builder.config().elm_window);
    const auto device = run_inference_offline(gpu, image, payload);
    const float host = elm.score(ds.windows[i]);
    EXPECT_NEAR(device.score, host, 1e-3f + 0.02f * std::fabs(host)) << i;
    EXPECT_FALSE(device.anomaly);
  }
}

TEST(ElmKernels, DeviceFlagsAnomalyAboveThreshold) {
  auto elm = small_trained_elm();
  const auto& p = workloads::find_profile("gcc");
  DatasetBuilder builder(p, 21);
  auto ds = builder.collect_elm(60);

  std::vector<float> scores;
  for (const auto& w : ds.windows) scores.push_back(elm.score(w));
  const auto threshold = Threshold::calibrate(scores, 95.0, 1.2f);
  const auto image =
      compile_elm(elm, threshold, builder.config().elm_window);

  GpuConfig gcfg;
  gcfg.num_cus = 5;
  Gpu gpu(gcfg);
  load_image(gpu, image);

  // A uniform histogram is far from anything trained.
  const std::uint32_t w = builder.config().elm_window;
  std::vector<std::uint32_t> weird(builder.config().elm_vocab,
                                   w / builder.config().elm_vocab);
  const auto device = run_inference_offline(gpu, image, weird);
  EXPECT_TRUE(device.anomaly);

  const auto normal = counts_payload(ds.windows[5], w);
  const auto device_ok = run_inference_offline(gpu, image, normal);
  EXPECT_FALSE(device_ok.anomaly);
}

TEST(ElmKernels, CompilerValidatesShapes) {
  ElmConfig cfg;
  cfg.input_dim = 32;
  cfg.hidden = 100;  // not a multiple of 64
  Elm elm(cfg);
  Threshold t(1.0f);
  EXPECT_THROW(compile_elm(elm, t, 32), std::logic_error);  // untrained
  std::vector<Vector> data(4, Vector(32, 0.03125f));
  data[1][3] = 0.2f;
  data[2][7] = 0.3f;
  elm.train(data);
  EXPECT_THROW(compile_elm(elm, t, 32), std::invalid_argument);
}

TEST(MlpKernels, DeviceScoreMatchesHost) {
  // The MLP deploys through the same autoencoder kernels as the ELM; the
  // device must reproduce the host's backprop-trained model too.
  const auto& p = workloads::find_profile("mcf");
  DatasetBuilder builder(p, 33);
  auto ds = builder.collect_elm(120);
  MlpConfig cfg;
  cfg.input_dim = builder.config().elm_vocab;
  cfg.hidden = 64;
  cfg.epochs = 15;
  Mlp mlp(cfg);
  std::vector<Vector> train(ds.windows.begin(), ds.windows.begin() + 100);
  mlp.train(train);

  const auto image =
      compile_mlp(mlp, Threshold(1e9f), builder.config().elm_window);
  EXPECT_EQ(image.name, "MLP");
  GpuConfig gcfg;
  gcfg.num_cus = 5;
  Gpu gpu(gcfg);
  load_image(gpu, image);
  for (std::size_t i = 100; i < 108; ++i) {
    const auto payload =
        counts_payload(ds.windows[i], builder.config().elm_window);
    const auto device = run_inference_offline(gpu, image, payload);
    const float host = mlp.score(ds.windows[i]);
    EXPECT_NEAR(device.score, host, 1e-3f + 0.02f * std::fabs(host)) << i;
  }
}

Lstm small_trained_lstm() {
  LstmConfig cfg;  // vocab 64, hidden 64: device shape
  cfg.epochs = 2;
  Lstm lstm(cfg);
  std::vector<std::uint32_t> tokens;
  sim::Xoshiro256 rng(31);
  for (int i = 0; i < 1500; ++i) {
    tokens.push_back(rng.chance(0.1)
                         ? static_cast<std::uint32_t>(rng.uniform_below(64))
                         : static_cast<std::uint32_t>(i % 12));
  }
  lstm.train(tokens);
  return lstm;
}

TEST(LstmKernels, DeviceNllTracksHostOverSequence) {
  const auto lstm = small_trained_lstm();
  Threshold threshold(1e9f);
  const auto image = compile_lstm(lstm, threshold, 0.0f);

  GpuConfig gcfg;
  gcfg.num_cus = 5;
  Gpu gpu(gcfg);
  load_image(gpu, image);

  // Drive the same token sequence through device and host; compare EWMA.
  auto state = lstm.initial_state();
  state.warm = true;  // device EWMA was seeded with 0
  state.ewma_nll = 0.0f;
  float device_score = 0.0f;
  for (int i = 0; i < 30; ++i) {
    const std::uint32_t tok = static_cast<std::uint32_t>(i % 12);
    const auto device = run_inference_offline(gpu, image, {tok});
    lstm.step(state, tok);
    device_score = device.score;
    EXPECT_NEAR(device.score, state.ewma_nll,
                1e-3f + 0.02f * std::fabs(state.ewma_nll))
        << "step " << i;
  }
  EXPECT_GT(device_score, 0.0f);
}

TEST(LstmKernels, DeviceFlagsOutOfPatternTokens) {
  const auto lstm = small_trained_lstm();
  // Calibrate on the in-pattern stream.
  auto state = lstm.initial_state();
  std::vector<float> scores;
  for (int i = 0; i < 300; ++i) {
    lstm.step(state, static_cast<std::uint32_t>(i % 12));
    scores.push_back(state.ewma_nll);
  }
  const auto threshold = Threshold::calibrate(scores, 99.0, 1.15f);
  const auto image =
      compile_lstm(lstm, threshold, scores[scores.size() / 2]);

  GpuConfig gcfg;
  gcfg.num_cus = 5;
  Gpu gpu(gcfg);
  load_image(gpu, image);

  bool flagged = false;
  for (int i = 0; i < 60 && !flagged; ++i) {
    flagged = run_inference_offline(gpu, image,
                                    {static_cast<std::uint32_t>(i % 12)})
                  .anomaly;
  }
  EXPECT_FALSE(flagged) << "normal stream must stay below threshold";

  sim::Xoshiro256 rng(77);
  for (int i = 0; i < 12 && !flagged; ++i) {
    flagged = run_inference_offline(
                  gpu, image,
                  {static_cast<std::uint32_t>(rng.uniform_below(64))})
                  .anomaly;
  }
  EXPECT_TRUE(flagged) << "random legitimate tokens must trip the EWMA";
}

TEST(LstmKernels, CompilerValidatesShapes) {
  LstmConfig cfg;
  cfg.vocab = 32;
  cfg.hidden = 64;
  Lstm lstm(cfg);
  std::vector<std::uint32_t> tokens(200);
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    tokens[i] = static_cast<std::uint32_t>(i % 8);
  }
  lstm.train(tokens);
  Threshold t(1.0f);
  EXPECT_THROW(compile_lstm(lstm, t, 0.0f), std::invalid_argument);
}

TEST(KernelCoverage, MergedCoverageEqualsCommittedMlSurface) {
  // Run both models' full inference once with coverage on, merge, and
  // require exact equality with the `used_by_ml` commitment. This is the
  // contract that makes the Table I/II numbers honest: the shipped
  // ML-MIAOW contains exactly the units these kernels exercise.
  const auto& inv = gpgpu::RtlInventory::instance();

  GpuConfig gcfg;
  gcfg.num_cus = 5;
  gcfg.collect_coverage = true;
  Gpu gpu(gcfg);

  // ELM pass (5 slices => hidden 320).
  {
    auto elm = small_trained_elm(320);
    Threshold t(1e9f);
    const auto image = compile_elm(elm, t, 32);
    load_image(gpu, image);
    std::vector<std::uint32_t> payload(image.input_words, 2);
    run_inference_offline(gpu, image, payload);
  }
  // LSTM pass.
  {
    const auto lstm = small_trained_lstm();
    Threshold t(1e9f);
    const auto image = compile_lstm(lstm, t, 0.0f);
    load_image(gpu, image);
    run_inference_offline(gpu, image, {3u});
    run_inference_offline(gpu, image, {5u});
  }

  const auto& cov = gpu.coverage();
  for (const auto& unit : inv.units()) {
    const bool covered = cov[unit.id] > 0;
    EXPECT_EQ(covered, unit.used_by_ml)
        << unit.name << (covered ? " covered but not committed"
                                 : " committed but never exercised");
  }
}

TEST(Kernels, AssembleWithinMlRegisterBudget) {
  for (const auto& prog :
       {kernels::elm_hidden(), kernels::elm_recon(), kernels::elm_score(),
        kernels::lstm_gates(), kernels::lstm_state(), kernels::lstm_logits(),
        kernels::lstm_score()}) {
    EXPECT_LE(prog.num_vgprs, 32u) << prog.name;  // one VGPR bank
    EXPECT_LE(prog.lds_bytes, 4096u) << prog.name;  // one LDS bank
    EXPECT_FALSE(prog.code.empty()) << prog.name;
    EXPECT_EQ(prog.code.back().op, gpgpu::Opcode::S_ENDPGM) << prog.name;
  }
}

}  // namespace
}  // namespace rtad::ml
