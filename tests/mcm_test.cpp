// MCM tests: FSM sequencing, driver launch ordering, protocol-converter
// costs, FIFO overflow behaviour, interrupt firing.
#include <gtest/gtest.h>

#include "rtad/coresight/pft_encoder.hpp"
#include "rtad/mcm/mcm.hpp"
#include "rtad/ml/kernels.hpp"
#include "rtad/sim/rng.hpp"

namespace rtad::mcm {
namespace {

using gpgpu::assemble;

TEST(ProtocolConverter, CostsScaleWithWords) {
  ProtocolConverter pc;
  EXPECT_EQ(pc.transfer_cycles(0), 0u);
  EXPECT_EQ(pc.transfer_cycles(1), 2u + 3u);
  EXPECT_EQ(pc.transfer_cycles(32), 2u + 96u);
  EXPECT_EQ(pc.reg_write_cycles(), 5u);
}

TEST(ControlFsm, StateNames) {
  EXPECT_STREQ(to_string(McmState::kWaitInput), "WAIT_INPUT");
  EXPECT_STREQ(to_string(McmState::kReadResult), "READ_RESULT");
}

/// A harness: hand-built trivial "model" whose single kernel copies the
/// input token to the score and flags anomaly when token > 100.
ml::ModelImage toy_image() {
  ml::ModelImage image;
  image.name = "toy";
  image.input_addr = 0x40;
  image.input_words = 1;
  image.result_addr = 0x0;
  ml::KernelStep step;
  step.program = assemble(R"(
  s_load_dword s4, s0, 0      ; input addr
  s_load_dword s5, s0, 4      ; result addr
  s_waitcnt 0
  s_load_dword s6, s4, 0      ; token
  s_waitcnt 0
  v_cmp_lt_i32 vcc, v0, 1
  s_and_b64 exec, exec, vcc
  v_mov_b32 v2, s6
  v_cvt_f32_u32 v2, v2
  v_mov_b32 v3, 0
  global_store_dword v2, v3, s5, 4
  v_mov_b32 v4, 100.0
  v_cmp_gt_f32 vcc, v2, v4
  v_cndmask_b32 v5, 0, 1
  global_store_dword v5, v3, s5
  s_endpgm
)");
  step.workgroups = 1;
  step.kernarg_addr = 0x200;
  image.steps.push_back(std::move(step));
  image.init_blocks.emplace_back(
      0x200, std::vector<std::uint32_t>{image.input_addr, image.result_addr});
  return image;
}

struct Harness {
  Harness() : gpu(gpgpu::GpuConfig{}), tpiu_fifo(64), igm_cfg(), image(toy_image()) {
    igm_cfg.encoder.vocab_size = 256;
    igm_cfg.out_capacity = 64;
    igm = std::make_unique<igm::Igm>(igm_cfg, tpiu_fifo);
    McmConfig mcfg;
    mcfg.fifo_depth = 4;
    mcm = std::make_unique<Mcm>(mcfg, *igm, gpu);
    mcm->load_model(&image);
  }

  /// Push one branch-address packet worth of trace bytes.
  void push_branch(std::uint64_t target, bool injected = false) {
    std::vector<std::uint8_t> bytes;
    if (!synced) {
      enc.emit_sync(0, 1, bytes);
      synced = true;
    }
    cpu::BranchEvent ev;
    ev.kind = cpu::BranchKind::kCall;
    ev.taken = true;
    ev.target = target;
    ev.retired_ps = 1000;
    ev.injected = injected;
    enc.encode(ev, bytes);
    coresight::TpiuWord w;
    for (const auto b : bytes) {
      w.bytes[w.count] = coresight::TraceByte{b, 1000, 0, injected};
      if (++w.count == 4) {
        tpiu_fifo.push(w);
        w = coresight::TpiuWord{};
      }
    }
    if (w.count > 0) tpiu_fifo.push(w);
  }

  void run(int fabric_cycles) {
    for (int i = 0; i < fabric_cycles; ++i) {
      igm->tick();
      mcm->tick();
      // 125 MHz fabric : 50 MHz GPU = 5 GPU ticks per 2 fabric... keep it
      // simple for unit tests: tick the GPU twice per fabric cycle (faster
      // GPU only shortens WAIT_DONE).
      gpu.tick();
      gpu.tick();
    }
  }

  gpgpu::Gpu gpu;
  sim::Fifo<coresight::TpiuWord> tpiu_fifo;
  igm::IgmConfig igm_cfg;
  ml::ModelImage image;
  std::unique_ptr<igm::Igm> igm;
  std::unique_ptr<Mcm> mcm;
  coresight::PftEncoder enc;
  bool synced = false;
};

TEST(Mcm, CompletesInferencePerVector) {
  Harness h;
  h.igm->encoder().map_address(0x50, 5);  // token 5 < 100: benign
  h.push_branch(0x50);
  h.run(3000);
  EXPECT_EQ(h.mcm->inferences_completed(), 1u);
  EXPECT_EQ(h.mcm->interrupts_fired(), 0u);
  EXPECT_EQ(h.mcm->state(), McmState::kWaitInput);
}

TEST(Mcm, FiresInterruptOnAnomaly) {
  Harness h;
  // Force a token > 100: map a specific address to token 200.
  h.igm->encoder().map_address(0x6000, 200);
  std::size_t irqs = 0;
  InferenceRecord last;
  h.mcm->set_interrupt_handler([&](const InferenceRecord& rec) {
    ++irqs;
    last = rec;
  });
  h.push_branch(0x6000, /*injected=*/true);
  h.run(3000);
  EXPECT_EQ(h.mcm->inferences_completed(), 1u);
  EXPECT_EQ(irqs, 1u);
  EXPECT_TRUE(last.anomaly);
  EXPECT_TRUE(last.injected);
  EXPECT_FLOAT_EQ(last.score, 200.0f);
  EXPECT_GT(last.latency_ps(), 0u);
}

TEST(Mcm, ObserverSeesEveryInference) {
  Harness h;
  std::size_t seen = 0;
  h.mcm->set_inference_observer([&](const InferenceRecord&) { ++seen; });
  for (int i = 0; i < 3; ++i) {
    h.push_branch(0x5000 + 2u * static_cast<unsigned>(i));
    h.run(3000);
  }
  EXPECT_EQ(seen, 3u);
}

TEST(Mcm, FifoOverflowDropsNewVectors) {
  Harness h;
  // Flood: many vectors while the engine grinds on the first.
  for (int i = 0; i < 40; ++i) h.push_branch(0x5000 + 2u * static_cast<unsigned>(i));
  h.run(40'000);
  EXPECT_GT(h.mcm->fifo_drops() + h.igm->drops_at_output(), 0u);
  EXPECT_GT(h.mcm->inferences_completed(), 1u);
  EXPECT_LT(h.mcm->inferences_completed(), 40u);
}

TEST(Mcm, NoModelMeansNoProcessing) {
  Harness h;
  h.mcm->load_model(nullptr);
  h.push_branch(0x50);
  h.run(2000);
  EXPECT_EQ(h.mcm->inferences_completed(), 0u);
  EXPECT_EQ(h.mcm->state(), McmState::kWaitInput);
}

TEST(Mcm, TxCyclesReflectPayloadSize) {
  Harness h;
  h.push_branch(0x50);
  h.run(3000);
  // 1-word payload through the converter: sync_stages + 1*fabric_per_gpu.
  EXPECT_EQ(h.mcm->last_tx_cycles(), 5u);
}

TEST(Mcm, ResetReturnsToWaitInput) {
  Harness h;
  h.push_branch(0x50);
  h.run(100);  // mid-flight
  h.mcm->reset();
  EXPECT_EQ(h.mcm->state(), McmState::kWaitInput);
  EXPECT_EQ(h.mcm->inferences_completed(), 0u);
}

TEST(Driver, SequencesAllStepsOnce) {
  gpgpu::Gpu gpu(gpgpu::GpuConfig{});
  ProtocolConverter pc;
  MlMiaowDriver driver(gpu, pc);
  auto image = toy_image();
  // Two copies of the step: a 2-step sequence.
  image.steps.push_back(image.steps[0]);
  ml::load_image(gpu, image);
  gpu.memory().write32(image.input_addr, 7);
  driver.set_model(&image);
  driver.begin_inference();
  int launches = 0;
  for (int i = 0; i < 100'000 && !driver.inference_done(); ++i) {
    if (driver.advance() > 0) ++launches;
    gpu.tick();
  }
  EXPECT_TRUE(driver.inference_done());
  EXPECT_EQ(launches, 2);
  EXPECT_EQ(driver.launches_issued(), 2u);
}

}  // namespace
}  // namespace rtad::mcm
