// ML library tests: linalg, datasets, ELM, LSTM, thresholds.
#include <gtest/gtest.h>

#include <cmath>

#include "rtad/ml/dataset.hpp"
#include "rtad/ml/elm.hpp"
#include "rtad/ml/linalg.hpp"
#include "rtad/ml/lstm.hpp"
#include "rtad/ml/mlp.hpp"
#include "rtad/ml/threshold.hpp"
#include "rtad/workloads/spec_model.hpp"

namespace rtad::ml {
namespace {

TEST(Linalg, MatvecAndMatmul) {
  Matrix a(2, 3);
  a(0, 0) = 1;
  a(0, 1) = 2;
  a(0, 2) = 3;
  a(1, 0) = 4;
  a(1, 1) = 5;
  a(1, 2) = 6;
  const Vector y = matvec(a, {1.0f, 1.0f, 1.0f});
  EXPECT_FLOAT_EQ(y[0], 6.0f);
  EXPECT_FLOAT_EQ(y[1], 15.0f);

  const Matrix at = a.transposed();
  const Matrix aat = matmul(a, at);
  EXPECT_FLOAT_EQ(aat(0, 0), 14.0f);
  EXPECT_FLOAT_EQ(aat(0, 1), 32.0f);
  EXPECT_FLOAT_EQ(aat(1, 1), 77.0f);

  const Matrix ata = matmul_at_b(a, a);
  EXPECT_FLOAT_EQ(ata(0, 0), 17.0f);
  EXPECT_FLOAT_EQ(ata(2, 2), 45.0f);
}

TEST(Linalg, ShapeChecks) {
  Matrix a(2, 3);
  EXPECT_THROW(matvec(a, {1.0f, 2.0f}), std::invalid_argument);
  Matrix b(2, 2);
  EXPECT_THROW(matmul(a, b), std::invalid_argument);
}

TEST(Linalg, RidgeSolveRecoversSolution) {
  // Solve (A + 0) x = b for a known SPD system.
  Matrix a(2, 2);
  a(0, 0) = 4;
  a(0, 1) = 1;
  a(1, 0) = 1;
  a(1, 1) = 3;
  Matrix b(2, 1);
  b(0, 0) = 1;
  b(1, 0) = 2;
  const Matrix x = ridge_solve(a, 0.0f, b);
  EXPECT_NEAR(x(0, 0), 1.0 / 11.0, 1e-5);
  EXPECT_NEAR(x(1, 0), 7.0 / 11.0, 1e-5);
}

TEST(Linalg, RidgeSolveRejectsIndefinite) {
  Matrix a(2, 2);
  a(0, 0) = 0;
  a(1, 1) = -1;
  Matrix b(2, 1);
  EXPECT_THROW(ridge_solve(a, 0.0f, b), std::runtime_error);
}

TEST(Linalg, SoftmaxNormalizes) {
  Vector v = {1.0f, 2.0f, 3.0f};
  softmax(v);
  EXPECT_NEAR(v[0] + v[1] + v[2], 1.0f, 1e-6);
  EXPECT_GT(v[2], v[1]);
}

TEST(Linalg, DeviceActivationsMatchReference) {
  for (float x : {-4.0f, -1.0f, 0.0f, 0.5f, 3.0f}) {
    EXPECT_NEAR(device_sigmoid(x), 1.0f / (1.0f + std::exp(-x)), 1e-5);
    EXPECT_NEAR(device_tanh(x), std::tanh(x), 1e-5);
  }
}

TEST(Dataset, MonitoredSitesDeterministicAndSorted) {
  const auto& p = workloads::find_profile("astar");
  DatasetBuilder a(p, 3), b(p, 3);
  EXPECT_EQ(a.monitored_addresses(), b.monitored_addresses());
  EXPECT_TRUE(std::is_sorted(a.monitored_addresses().begin(),
                             a.monitored_addresses().end()));
  EXPECT_EQ(a.monitored_addresses().size(), a.config().monitored_sites);
}

TEST(Dataset, LstmTokensWithinVocab) {
  const auto& p = workloads::find_profile("omnetpp");
  DatasetBuilder builder(p, 5);
  const auto ds = builder.collect_lstm(300);
  EXPECT_EQ(ds.tokens.size(), 300u);
  for (const auto t : ds.tokens) {
    EXPECT_LT(t, builder.config().monitored_sites);
  }
}

TEST(Dataset, LstmTokenLookupMatchesCollection) {
  const auto& p = workloads::find_profile("omnetpp");
  DatasetBuilder builder(p, 5);
  const auto& mon = builder.monitored_addresses();
  for (std::size_t i = 0; i < mon.size(); i += 9) {
    EXPECT_EQ(builder.lstm_token(mon[i]), i);
  }
  EXPECT_EQ(builder.lstm_token(0xDEAD), builder.config().lstm_vocab - 1);
}

TEST(Dataset, ElmWindowsNormalized) {
  const auto& p = workloads::find_profile("gcc");
  DatasetBuilder builder(p, 7);
  const auto ds = builder.collect_elm(50);
  ASSERT_EQ(ds.windows.size(), 50u);
  for (const auto& w : ds.windows) {
    EXPECT_EQ(w.size(), builder.config().elm_vocab);
    float sum = 0;
    for (const float v : w) sum += v;
    EXPECT_NEAR(sum, 1.0f, 1e-4);  // counts / window sum to 1
  }
}

TEST(Elm, TrainsAndScoresNormalLow) {
  const auto& p = workloads::find_profile("gcc");
  DatasetBuilder builder(p, 11);
  auto ds = builder.collect_elm(300);
  ElmConfig cfg;
  cfg.input_dim = builder.config().elm_vocab;
  cfg.hidden = 320;
  Elm elm(cfg);
  std::vector<Vector> train(ds.windows.begin(), ds.windows.begin() + 250);
  elm.train(train);

  // Normal windows reconstruct well; windows of uniformly random (but
  // legitimate) syscalls — the paper's attack emulation — reconstruct
  // poorly.
  double normal_mean = 0;
  for (std::size_t i = 250; i < 300; ++i) {
    normal_mean += elm.score(ds.windows[i]);
  }
  normal_mean /= 50;
  sim::Xoshiro256 rng(9);
  double attack_mean = 0;
  const auto window = builder.config().elm_window;
  for (int t = 0; t < 20; ++t) {
    Vector x(cfg.input_dim, 0.0f);
    for (std::uint32_t i = 0; i < window; ++i) {
      x[builder.elm_bucket(workloads::TraceGenerator::syscall_address(
          rng.uniform_below(p.syscall_kinds)))] +=
          1.0f / static_cast<float>(window);
    }
    attack_mean += elm.score(x);
  }
  attack_mean /= 20;
  EXPECT_GT(attack_mean, 3.0 * normal_mean);
}

TEST(Elm, DeterministicGivenSeed) {
  ElmConfig cfg;
  cfg.input_dim = 8;
  cfg.hidden = 64;
  Elm a(cfg), b(cfg);
  const Vector x = {0.1f, 0.2f, 0.0f, 0.0f, 0.3f, 0.1f, 0.2f, 0.1f};
  EXPECT_EQ(a.hidden(x), b.hidden(x));
}

TEST(Elm, ValidatesUsage) {
  ElmConfig cfg;
  cfg.input_dim = 4;
  cfg.hidden = 64;
  Elm elm(cfg);
  EXPECT_THROW(elm.score({0.1f, 0.2f, 0.3f, 0.4f}), std::logic_error);
  EXPECT_THROW(elm.train({}), std::invalid_argument);
  EXPECT_THROW(elm.hidden({0.1f}), std::invalid_argument);
}

TEST(Lstm, TrainingReducesNll) {
  // A strongly structured sequence: repeating 0,1,2,...,7 with noise.
  sim::Xoshiro256 rng(3);
  std::vector<std::uint32_t> tokens;
  for (int i = 0; i < 3000; ++i) {
    tokens.push_back(rng.chance(0.05)
                         ? static_cast<std::uint32_t>(rng.uniform_below(8))
                         : static_cast<std::uint32_t>(i % 8));
  }
  LstmConfig cfg;
  cfg.vocab = 8;
  cfg.hidden = 16;
  cfg.epochs = 4;
  Lstm lstm(cfg);
  const float untrained = Lstm(cfg).evaluate(tokens);
  const float final_nll = lstm.train(tokens);
  EXPECT_LT(final_nll, untrained * 0.5f);
  // And the trained model predicts the cycle.
  const float eval = lstm.evaluate(tokens);
  EXPECT_LT(eval, 1.0f);  // near-deterministic sequence => low NLL
}

TEST(Lstm, SurprisedByShuffledTokens) {
  sim::Xoshiro256 rng(5);
  std::vector<std::uint32_t> tokens;
  for (int i = 0; i < 3000; ++i) tokens.push_back(i % 6);
  LstmConfig cfg;
  cfg.vocab = 8;
  cfg.hidden = 16;
  cfg.epochs = 4;
  Lstm lstm(cfg);
  lstm.train(tokens);
  std::vector<std::uint32_t> shuffled;
  for (int i = 0; i < 500; ++i) {
    shuffled.push_back(static_cast<std::uint32_t>(rng.uniform_below(8)));
  }
  EXPECT_GT(lstm.evaluate(shuffled), 2.0f * lstm.evaluate(tokens));
}

TEST(Lstm, EwmaScoreTracksSurprise) {
  std::vector<std::uint32_t> tokens;
  for (int i = 0; i < 2000; ++i) tokens.push_back(i % 4);
  LstmConfig cfg;
  cfg.vocab = 8;
  cfg.hidden = 16;
  cfg.epochs = 4;
  Lstm lstm(cfg);
  lstm.train(tokens);
  auto state = lstm.initial_state();
  for (int i = 0; i < 100; ++i) lstm.step(state, i % 4);
  const float calm = state.ewma_nll;
  for (int i = 0; i < 5; ++i) lstm.step(state, 7);  // out-of-pattern token
  EXPECT_GT(state.ewma_nll, calm * 1.5f);
}

TEST(Lstm, StateIsolation) {
  LstmConfig cfg;
  cfg.vocab = 8;
  cfg.hidden = 8;
  Lstm lstm(cfg);
  std::vector<std::uint32_t> tokens(200, 1);
  for (std::size_t i = 0; i < tokens.size(); i += 2) tokens[i] = 0;
  lstm.train(tokens);
  auto s1 = lstm.initial_state();
  auto s2 = lstm.initial_state();
  lstm.step(s1, 0);
  EXPECT_EQ(s2.h, lstm.initial_state().h);  // untouched
}

TEST(Lstm, ValidatesInput) {
  LstmConfig cfg;
  cfg.vocab = 4;
  cfg.hidden = 4;
  Lstm lstm(cfg);
  auto state = lstm.initial_state();
  EXPECT_THROW(lstm.step(state, 4), std::invalid_argument);
  EXPECT_THROW(lstm.train({1, 2}), std::invalid_argument);
}

TEST(Mlp, TrainingReducesReconstructionError) {
  const auto& p = workloads::find_profile("gcc");
  DatasetBuilder builder(p, 13);
  auto ds = builder.collect_elm(200);
  MlpConfig cfg;
  cfg.input_dim = builder.config().elm_vocab;
  cfg.hidden = 64;
  cfg.epochs = 20;
  Mlp mlp(cfg);
  // Untrained reconstruction error of a random network.
  Mlp untrained(cfg);
  const float final_mse = mlp.train(ds.windows);
  double before = 0, after = 0;
  untrained.train({ds.windows[0]});  // mark trained for score(); 1 sample
  for (int i = 0; i < 50; ++i) {
    before += untrained.score(ds.windows[i]);
    after += mlp.score(ds.windows[i]);
  }
  EXPECT_LT(after, before * 0.5);
  EXPECT_GT(final_mse, 0.0f);
}

TEST(Mlp, MatchesElmAccuracyClass) {
  const auto& p = workloads::find_profile("astar");
  DatasetBuilder builder(p, 15);
  auto ds = builder.collect_elm(260);
  std::vector<Vector> train(ds.windows.begin(), ds.windows.begin() + 200);

  MlpConfig mcfg;
  mcfg.input_dim = builder.config().elm_vocab;
  mcfg.hidden = 128;
  mcfg.epochs = 30;
  Mlp mlp(mcfg);
  mlp.train(train);

  // Normal windows reconstruct much better than storm windows.
  double normal = 0;
  for (std::size_t i = 200; i < 260; ++i) normal += mlp.score(ds.windows[i]);
  normal /= 60;
  Vector storm(mcfg.input_dim, 0.0f);
  storm[3] = 1.0f;  // all mass in one bucket
  EXPECT_GT(mlp.score(storm), 5.0 * normal);
}

TEST(Mlp, ValidatesUsage) {
  MlpConfig cfg;
  cfg.input_dim = 8;
  cfg.hidden = 16;
  Mlp mlp(cfg);
  EXPECT_THROW(mlp.score(Vector(8, 0.1f)), std::logic_error);
  EXPECT_THROW(mlp.train({}), std::invalid_argument);
  EXPECT_THROW(mlp.hidden(Vector(3, 0.1f)), std::invalid_argument);
  EXPECT_EQ(mlp.parameter_count(), 8u * 16 + 16 + 16u * 8);
}

TEST(Threshold, CalibratesAtPercentile) {
  std::vector<float> scores;
  for (int i = 1; i <= 100; ++i) scores.push_back(static_cast<float>(i));
  const auto t = Threshold::calibrate(scores, 99.0, 1.0f);
  EXPECT_FLOAT_EQ(t.value(), 99.0f);
  EXPECT_TRUE(t.exceeded(100.0f));
  EXPECT_FALSE(t.exceeded(99.0f));
}

TEST(Threshold, MarginScales) {
  const auto t = Threshold::calibrate({10.0f}, 99.0, 1.5f);
  EXPECT_FLOAT_EQ(t.value(), 15.0f);
  EXPECT_THROW(Threshold::calibrate({}, 99.0), std::invalid_argument);
}

TEST(Threshold, DetectionStats) {
  Threshold t(5.0f);
  const auto s = evaluate_detection(t, {1.0f, 2.0f, 6.0f}, {7.0f, 8.0f, 3.0f});
  EXPECT_EQ(s.true_positives, 2u);
  EXPECT_EQ(s.false_negatives, 1u);
  EXPECT_EQ(s.false_positives, 1u);
  EXPECT_EQ(s.true_negatives, 2u);
  EXPECT_NEAR(s.true_positive_rate(), 2.0 / 3.0, 1e-9);
  EXPECT_NEAR(s.false_positive_rate(), 1.0 / 3.0, 1e-9);
}

}  // namespace
}  // namespace rtad::ml
