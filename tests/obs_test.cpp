// Observability layer tests.
//
// Unit level: TraceSink event recording + Chrome-trace JSON formatting,
// JsonWriter layout stability, indexed_path suffixing. Integration level
// (shared fast-trained cache, like determinism_test): the trace and metrics
// exports must be byte-identical across scheduler kernels and worker
// counts, per-component cycle accounts must sum exactly to each domain's
// elapsed cycles, and enabling the layer must not perturb detection. Also
// covers the cells/results size-mismatch guard on the runner tables.
#include <gtest/gtest.h>

#include <fstream>
#include <limits>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "rtad/core/experiment_runner.hpp"
#include "rtad/core/metrics_export.hpp"
#include "rtad/obs/json.hpp"
#include "rtad/obs/observer.hpp"
#include "rtad/obs/trace_sink.hpp"

namespace rtad {
namespace {

// ---------------------------------------------------------------- TraceSink

TEST(TraceSink, WritesChromeJsonWithMetadataAndExactTimestamps) {
  obs::TraceSink sink;
  const auto t = sink.track("mcm.fsm");
  sink.complete(t, "WAIT_INPUT", 8'000, 16'000);
  sink.instant(t, "irq", 32'000);
  std::ostringstream os;
  sink.write_chrome_json(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("\"displayTimeUnit\":\"ns\""), std::string::npos);
  EXPECT_NE(out.find("\"name\":\"process_name\""), std::string::npos);
  EXPECT_NE(out.find("\"name\":\"mcm.fsm\""), std::string::npos);
  // ps -> us is printed exactly from integers: 8000 ps == 0.008000 us.
  EXPECT_NE(out.find("\"ts\":0.008000,\"dur\":0.016000"), std::string::npos);
  EXPECT_NE(out.find("\"ts\":0.032000"), std::string::npos);
}

TEST(TraceSink, BeginAutoClosesAndDanglingEndIsNoOp) {
  obs::TraceSink sink;
  const auto t = sink.track("fsm");
  sink.begin(t, "A", 0);
  sink.begin(t, "B", 100);  // closes A as [0, 100)
  sink.end(t, 250);         // closes B as [100, 250)
  sink.end(t, 300);         // nothing open: no event
  EXPECT_EQ(sink.event_count(), 2u);
}

TEST(TraceSink, OpenSpansAreNotEmitted) {
  obs::TraceSink sink;
  const auto t = sink.track("fsm");
  sink.begin(t, "dangling", 500);
  std::ostringstream os;
  sink.write_chrome_json(os);
  EXPECT_EQ(os.str().find("dangling"), std::string::npos);
  EXPECT_EQ(sink.event_count(), 0u);
}

TEST(TraceSink, CounterDedupsConsecutiveIdenticalValues) {
  obs::TraceSink sink;
  const auto c = sink.counter_track("fifo");
  sink.counter(c, 5, 100);
  sink.counter(c, 5, 200);  // elided
  sink.counter(c, 6, 300);
  sink.counter(c, 5, 400);
  EXPECT_EQ(sink.event_count(), 3u);
}

TEST(TraceHandle, DefaultConstructedIsInert) {
  obs::TraceHandle h;
  EXPECT_FALSE(static_cast<bool>(h));
  // Every method must be a safe no-op on the null handle.
  h.begin("x", 0);
  h.end(1);
  h.complete("y", 2, 3);
  h.instant("z", 4);
  h.counter(7, 5);
}

// --------------------------------------------------------------- JsonWriter

TEST(JsonWriter, LayoutIsByteStable) {
  std::ostringstream os;
  obs::JsonWriter w(os);
  w.begin_object();
  w.field("name", "x");
  w.field("count", std::uint64_t{3});
  w.field("ratio", 0.5);
  w.key("list");
  w.begin_array();
  w.value(std::uint64_t{1});
  w.value(std::uint64_t{2});
  w.end_array();
  w.key("nested");
  w.begin_object();
  w.field("flag", true);
  w.end_object();
  w.end_object();
  EXPECT_EQ(os.str(),
            "{\n"
            "  \"name\": \"x\",\n"
            "  \"count\": 3,\n"
            "  \"ratio\": 0.5,\n"
            "  \"list\": [\n"
            "    1,\n"
            "    2\n"
            "  ],\n"
            "  \"nested\": {\n"
            "    \"flag\": true\n"
            "  }\n"
            "}\n");
}

TEST(JsonWriter, EscapesAndNonFiniteDoubles) {
  std::ostringstream os;
  obs::JsonWriter w(os);
  w.begin_object();
  w.field("quote\"back\\slash", "line\nbreak\ttab");
  w.field("nan", std::numeric_limits<double>::quiet_NaN());
  w.end_object();
  EXPECT_NE(os.str().find("\"quote\\\"back\\\\slash\": \"line\\nbreak\\ttab\""),
            std::string::npos);
  EXPECT_NE(os.str().find("\"nan\": null"), std::string::npos);
}

// -------------------------------------------------------------- indexed_path

TEST(IndexedPath, SuffixesBeforeJsonExtension) {
  EXPECT_EQ(obs::indexed_path("trace.json", 3), "trace.cell003.json");
  EXPECT_EQ(obs::indexed_path("out/metrics.json", 12), "out/metrics.cell012.json");
  EXPECT_EQ(obs::indexed_path("plain", 0), "plain.cell000");
  EXPECT_EQ(obs::indexed_path("", 5), "");
}

// ------------------------------------------------------------ metrics export

TEST(MetricsExport, StableKeysAndSchedulerCountersExcluded) {
  core::DetectionResult r;
  r.benchmark = "unit";
  r.model = core::ModelKind::kElm;
  r.engine = core::EngineKind::kMiaow;
  r.attacks = 2;
  r.detections = 1;
  r.mean_latency_us = 12.5;
  r.skipped_edge_groups = 999;  // mode-dependent: must not appear
  r.cycle_accounts.push_back(
      obs::ComponentCycles{"mcm", "mlpu", obs::CycleAccount{10, 20, 3, 2, 1}});
  sim::StatsRegistry stats;
  stats.counter("sim.skipped_edge_groups").add(7);   // excluded
  stats.counter("sim.skipped_cycles.cpu").add(9);    // excluded
  stats.counter("custom.events").add(3);             // kept
  stats.sampler("lat_us").record(1.5);
  const std::vector<std::pair<std::string, sim::Cycle>> domains = {
      {"cpu", 100}, {"mlpu", 50}};

  std::ostringstream os;
  core::write_metrics_json(os, r, stats, domains);
  const std::string doc = os.str();

  // Re-serializing identical inputs is byte-identical.
  std::ostringstream os2;
  core::write_metrics_json(os2, r, stats, domains);
  EXPECT_EQ(doc, os2.str());

  // Top-level sections appear in their documented order.
  std::size_t last = 0;
  for (const char* section :
       {"\"schema\"", "\"cell\"", "\"detection\"", "\"health\"", "\"domains\"",
        "\"cycle_accounts\"", "\"counters\"", "\"samplers\""}) {
    const auto pos = doc.find(section);
    ASSERT_NE(pos, std::string::npos) << section;
    EXPECT_GT(pos, last) << section;
    last = pos;
  }

  EXPECT_NE(doc.find("\"schema\": \"rtad.metrics.v1\""), std::string::npos);
  EXPECT_NE(doc.find("\"mean_latency_us\": 12.5"), std::string::npos);
  EXPECT_NE(doc.find("\"custom.events\": 3"), std::string::npos);
  EXPECT_NE(doc.find("\"stall_fifo\": 3"), std::string::npos);
  EXPECT_NE(doc.find("\"total\": 36"), std::string::npos);
  EXPECT_EQ(doc.find("skipped"), std::string::npos);
}

// ----------------------------------------------------- SoC-level integration

workloads::SpecProfile fast_profile(const std::string& name) {
  auto p = workloads::find_profile(name);
  p.syscall_interval_instrs = 40'000;  // keep sim time short
  return p;
}

core::TrainingOptions fast_training() {
  core::TrainingOptions opt;
  opt.lstm_train_tokens = 2'500;
  opt.lstm_val_tokens = 700;
  opt.elm_train_windows = 250;
  opt.elm_val_windows = 80;
  opt.lstm.epochs = 2;
  return opt;
}

std::shared_ptr<core::TrainedModelCache> shared_cache() {
  static const auto cache = std::make_shared<core::TrainedModelCache>(
      fast_training(),
      [](const std::string& name) { return fast_profile(name); });
  return cache;
}

/// Options with the ambient RTAD_TRACE/RTAD_METRICS (if any) cleared, so the
/// test controls exactly which runs export files.
core::DetectionOptions base_options() {
  core::DetectionOptions opt;
  opt.attacks = 2;
  opt.trace_path.clear();
  opt.metrics_path.clear();
  return opt;
}

core::DetectionResult run_cell(core::DetectionOptions opt, sim::SchedMode mode,
                               core::ModelKind model = core::ModelKind::kLstm) {
  auto cache = shared_cache();
  opt.sched = mode;
  return core::measure_detection(cache->profile("astar"), cache->get("astar"),
                                 model, core::EngineKind::kMlMiaow, opt);
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

TEST(Observability, TraceAndMetricsIdenticalAcrossSchedulers) {
  const std::string dir = testing::TempDir();
  auto dense_opt = base_options();
  dense_opt.trace_path = dir + "obs_sched_dense.trace.json";
  dense_opt.metrics_path = dir + "obs_sched_dense.metrics.json";
  run_cell(dense_opt, sim::SchedMode::kDense);
  auto event_opt = base_options();
  event_opt.trace_path = dir + "obs_sched_event.trace.json";
  event_opt.metrics_path = dir + "obs_sched_event.metrics.json";
  run_cell(event_opt, sim::SchedMode::kEventDriven);

  const std::string trace_dense = read_file(dense_opt.trace_path);
  const std::string trace_event = read_file(event_opt.trace_path);
  ASSERT_FALSE(trace_dense.empty());
  EXPECT_NE(trace_dense.find("\"traceEvents\""), std::string::npos);
  EXPECT_EQ(trace_dense, trace_event);

  const std::string metrics_dense = read_file(dense_opt.metrics_path);
  const std::string metrics_event = read_file(event_opt.metrics_path);
  ASSERT_FALSE(metrics_dense.empty());
  EXPECT_NE(metrics_dense.find("\"schema\": \"rtad.metrics.v1\""),
            std::string::npos);
  EXPECT_EQ(metrics_dense, metrics_event);
}

TEST(Observability, ExportsAreWorkerCountInvariant) {
  const std::string dir = testing::TempDir();
  auto opt = base_options();
  opt.trace_path = dir + "obs_wc.trace.json";
  opt.metrics_path = dir + "obs_wc.metrics.json";
  const std::vector<core::DetectionCell> cells = {
      {"astar", core::ModelKind::kLstm, core::EngineKind::kMlMiaow, opt},
      {"astar", core::ModelKind::kElm, core::EngineKind::kMlMiaow, opt},
  };

  core::ExperimentRunner serial(1, shared_cache());
  serial.run_detection_matrix(cells);
  std::vector<std::string> traces;
  std::vector<std::string> metrics;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    traces.push_back(read_file(obs::indexed_path(opt.trace_path, i)));
    metrics.push_back(read_file(obs::indexed_path(opt.metrics_path, i)));
    ASSERT_FALSE(traces.back().empty());
    ASSERT_FALSE(metrics.back().empty());
  }

  core::ExperimentRunner pooled(8, shared_cache());
  pooled.run_detection_matrix(cells);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    SCOPED_TRACE("cell=" + std::to_string(i));
    EXPECT_EQ(read_file(obs::indexed_path(opt.trace_path, i)), traces[i]);
    EXPECT_EQ(read_file(obs::indexed_path(opt.metrics_path, i)), metrics[i]);
  }
}

TEST(Observability, CycleAccountsConserveDomainCyclesInBothModes) {
  auto opt = base_options();
  opt.cycle_accounts = true;
  const auto event = run_cell(opt, sim::SchedMode::kEventDriven);
  ASSERT_FALSE(event.cycle_accounts.empty());

  // Default clock plan: cpu 250 MHz, fabric 125 MHz, gpu 50 MHz.
  const auto period_ps = [](const std::string& domain) -> std::uint64_t {
    if (domain == "cpu") return 4'000;
    if (domain == "mlpu") return 8'000;
    return 20'000;
  };
  for (const auto& acct : event.cycle_accounts) {
    SCOPED_TRACE(acct.component);
    // Buckets sum exactly to the cycles the domain elapsed — no cycle is
    // double-counted or lost, even the ones the event kernel slept through.
    EXPECT_EQ(acct.cycles.total(),
              event.simulated_ps / period_ps(acct.domain));
  }

  const auto dense = run_cell(opt, sim::SchedMode::kDense);
  ASSERT_EQ(dense.cycle_accounts.size(), event.cycle_accounts.size());
  for (std::size_t i = 0; i < dense.cycle_accounts.size(); ++i) {
    const auto& d = dense.cycle_accounts[i];
    const auto& e = event.cycle_accounts[i];
    SCOPED_TRACE(d.component);
    EXPECT_EQ(d.component, e.component);
    EXPECT_EQ(d.domain, e.domain);
    EXPECT_EQ(d.cycles.busy, e.cycles.busy);
    EXPECT_EQ(d.cycles.idle, e.cycles.idle);
    EXPECT_EQ(d.cycles.stall_fifo, e.cycles.stall_fifo);
    EXPECT_EQ(d.cycles.stall_bus, e.cycles.stall_bus);
    EXPECT_EQ(d.cycles.stall_done, e.cycles.stall_done);
  }
}

TEST(Observability, EnablingTheLayerDoesNotPerturbDetection) {
  const auto plain = run_cell(base_options(), sim::SchedMode::kEventDriven);
  EXPECT_TRUE(plain.cycle_accounts.empty());

  auto opt = base_options();
  opt.cycle_accounts = true;
  opt.trace_path = testing::TempDir() + "obs_perturb.trace.json";
  const auto traced = run_cell(opt, sim::SchedMode::kEventDriven);

  EXPECT_EQ(plain.score_digest, traced.score_digest);
  EXPECT_EQ(plain.simulated_ps, traced.simulated_ps);
  EXPECT_EQ(plain.inferences, traced.inferences);
  EXPECT_EQ(plain.detections, traced.detections);
  EXPECT_EQ(plain.mean_latency_us, traced.mean_latency_us);
  EXPECT_EQ(plain.fifo_drops, traced.fifo_drops);
}

// ------------------------------------------------------- runner table guards

TEST(RunnerTables, RejectCellResultSizeMismatch) {
  core::ExperimentRunner runner(1);
  std::vector<core::DetectionCell> cells(2);
  std::vector<core::CellResult> results(1);
  std::ostringstream os;
  // Bugfix: these used to silently truncate to the shorter list.
  EXPECT_THROW(runner.print_cell_costs(os, cells, results),
               std::invalid_argument);
  EXPECT_THROW(core::ExperimentRunner::print_health(os, cells, results),
               std::invalid_argument);
  EXPECT_THROW(core::ExperimentRunner::print_cycle_accounts(os, cells, results),
               std::invalid_argument);

  results.emplace_back();
  EXPECT_NO_THROW(runner.print_cell_costs(os, cells, results));
  EXPECT_NO_THROW(core::ExperimentRunner::print_health(os, cells, results));
  EXPECT_NO_THROW(
      core::ExperimentRunner::print_cycle_accounts(os, cells, results));
}

}  // namespace
}  // namespace rtad
