// Property-based / parameterized sweeps over cross-cutting invariants.
#include <gtest/gtest.h>

#include "rtad/bus/interconnect.hpp"
#include "rtad/bus/memory.hpp"
#include "rtad/coresight/pft_encoder.hpp"
#include "rtad/gpgpu/assembler.hpp"
#include "rtad/gpgpu/rtl_inventory.hpp"
#include "rtad/igm/pft_decoder.hpp"
#include "rtad/igm/vector_encoder.hpp"
#include "rtad/ml/dataset.hpp"
#include "rtad/sim/fifo.hpp"
#include "rtad/sim/rng.hpp"
#include "rtad/workloads/trace_generator.hpp"

namespace rtad {
namespace {

// ---------------------------------------------------------------- PFT

class PftRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PftRoundTrip, EncodeDecodePreservesWaypoints) {
  sim::Xoshiro256 rng(GetParam());
  coresight::PftEncoder enc;
  igm::PftStreamDecoder dec;
  std::vector<std::uint8_t> bytes;
  enc.emit_sync(0, 1, bytes);
  std::vector<std::uint64_t> expected;
  std::size_t conditionals = 0;
  for (int i = 0; i < 400; ++i) {
    cpu::BranchEvent ev;
    const double u = rng.uniform();
    if (u < 0.5) {
      ev.kind = cpu::BranchKind::kConditional;
      ev.taken = rng.chance(0.6);
      ++conditionals;
    } else if (u < 0.8) {
      ev.kind = cpu::BranchKind::kCall;
      ev.target = (rng.next() & 0x00FF'FFFE) | 0x10000;
      expected.push_back(ev.target);
    } else if (u < 0.95) {
      ev.kind = cpu::BranchKind::kReturn;
      ev.target = (rng.next() & 0x000F'FFFE) | 0x20000;
      expected.push_back(ev.target);
    } else {
      ev.kind = cpu::BranchKind::kSyscall;
      ev.target = 0xC000'0000 + 32 * rng.uniform_below(40);
      expected.push_back(ev.target);
    }
    ev.taken = ev.kind == cpu::BranchKind::kConditional ? ev.taken : true;
    enc.encode(ev, bytes);
  }
  enc.flush_atoms(bytes);
  std::vector<std::uint64_t> decoded;
  for (const auto b : bytes) {
    if (auto d = dec.feed(coresight::TraceByte{b, 0, 0, false})) {
      decoded.push_back(d->address);
    }
  }
  ASSERT_EQ(decoded.size(), expected.size());
  for (std::size_t i = 0; i < decoded.size(); ++i) {
    EXPECT_EQ(decoded[i], expected[i] & 0xFFFF'FFFE) << i;
  }
  EXPECT_EQ(dec.atoms_decoded(), conditionals);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PftRoundTrip,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

// ---------------------------------------------------------------- FIFO

class FifoProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FifoProperty, AcceptedItemsAreNeverLostOrReordered) {
  const std::size_t capacity = GetParam();
  sim::Fifo<std::uint64_t> fifo(capacity);
  sim::Xoshiro256 rng(capacity * 977);
  std::uint64_t next_push = 0, next_pop = 0;
  std::vector<std::uint64_t> accepted;
  std::size_t accepted_head = 0;
  for (int op = 0; op < 20'000; ++op) {
    if (rng.chance(0.55)) {
      if (fifo.try_push(next_push)) accepted.push_back(next_push);
      ++next_push;
    } else if (auto v = fifo.pop()) {
      ASSERT_LT(accepted_head, accepted.size());
      EXPECT_EQ(*v, accepted[accepted_head]);
      ++accepted_head;
      ++next_pop;
    }
    EXPECT_LE(fifo.size(), capacity);
  }
  EXPECT_EQ(fifo.size(), accepted.size() - accepted_head);
}

INSTANTIATE_TEST_SUITE_P(Capacities, FifoProperty,
                         ::testing::Values(1, 2, 3, 4, 8, 16, 64));

// ----------------------------------------------------------- Interconnect

class BurstEquivalence : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BurstEquivalence, BurstWritesMatchSingles) {
  const std::size_t n = GetParam();
  bus::Memory a(4096), b(4096);
  bus::Interconnect bus_a, bus_b;
  bus_a.map("m", 0, 4096, a);
  bus_b.map("m", 0, 4096, b);
  sim::Xoshiro256 rng(n * 31);
  std::vector<std::uint32_t> beats(n);
  for (auto& v : beats) v = static_cast<std::uint32_t>(rng.next());
  bus_a.write_burst(64, beats);
  for (std::size_t i = 0; i < n; ++i) bus_b.write32(64 + 4 * i, beats[i]);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(a.read32(64 + 4 * i), b.read32(64 + 4 * i));
  }
  // Bursts never cost more than singles.
  std::vector<std::uint32_t> out;
  EXPECT_LE(bus_a.read_burst(64, n, out),
            n * (bus_a.timing().arbitration_cycles +
                 bus_a.timing().read_beat_cycles));
}

INSTANTIATE_TEST_SUITE_P(Sizes, BurstEquivalence,
                         ::testing::Values(1, 2, 15, 16, 17, 33, 64));

// --------------------------------------------------------- VectorEncoder

class HistogramProperty : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(HistogramProperty, CountsSumToWindowOccupancy) {
  const std::uint32_t window = GetParam();
  igm::VectorEncoderConfig cfg;
  cfg.encoding = igm::Encoding::kSlidingHistogram;
  cfg.vocab_size = 8;
  cfg.window = window;
  igm::VectorEncoder enc(cfg);
  sim::Xoshiro256 rng(window * 7);
  igm::InputVector out;
  for (std::uint32_t i = 0; i < 200; ++i) {
    enc.encode(igm::DecodedBranch{rng.next() & ~1ULL, false, 0, i, false},
               out);
    std::uint32_t sum = 0;
    for (const auto c : out.payload) sum += c;
    EXPECT_EQ(sum, std::min(i + 1, window));
  }
}

INSTANTIATE_TEST_SUITE_P(Windows, HistogramProperty,
                         ::testing::Values(1, 2, 3, 8, 32, 64));

// --------------------------------------------------------- Workloads

class BenchmarkSweep : public ::testing::TestWithParam<std::string> {};

TEST_P(BenchmarkSweep, DensityAndDeterminismHold) {
  const auto& p = workloads::find_profile(GetParam());
  workloads::TraceGenerator g1(p, 99), g2(p, 99);
  std::uint64_t instrs = 0, branches = 0;
  for (int i = 0; i < 20'000; ++i) {
    const auto s1 = g1.next();
    const auto s2 = g2.next();
    ASSERT_EQ(s1.event.target, s2.event.target);
    ASSERT_EQ(s1.instr_gap, s2.instr_gap);
    instrs += s1.instr_gap + 1;
    ++branches;
  }
  const double density =
      static_cast<double>(branches) / static_cast<double>(instrs);
  EXPECT_NEAR(density, p.branch_fraction, 0.15 * p.branch_fraction);
}

INSTANTIATE_TEST_SUITE_P(AllCint2006, BenchmarkSweep,
                         ::testing::ValuesIn(workloads::spec_names()));

// --------------------------------------------------------- RTL inventory

class OpcodeSweep : public ::testing::TestWithParam<int> {};

TEST_P(OpcodeSweep, EveryOpcodeHasConsistentMetadata) {
  const auto op = static_cast<gpgpu::Opcode>(GetParam());
  EXPECT_FALSE(gpgpu::mnemonic(op).empty());
  EXPECT_GT(gpgpu::cycle_cost(op), 0u);
  const auto& inv = gpgpu::RtlInventory::instance();
  const auto& unit = inv.unit(inv.opcode_unit(op));
  EXPECT_GT(unit.luts + unit.ffs, 0u) << gpgpu::mnemonic(op);
  // ALU-domain flag must match the pipe classification.
  const auto pipe = gpgpu::pipe_of(op);
  const bool is_alu = pipe == gpgpu::Pipe::kSalu ||
                      pipe == gpgpu::Pipe::kValuF32 ||
                      pipe == gpgpu::Pipe::kValuTrans ||
                      pipe == gpgpu::Pipe::kValuF64;
  EXPECT_EQ(unit.alu_or_decoder, is_alu) << gpgpu::mnemonic(op);
}

INSTANTIATE_TEST_SUITE_P(
    AllOpcodes, OpcodeSweep,
    ::testing::Range(0, static_cast<int>(gpgpu::kNumOpcodes)));

TEST(InventoryProperty, CategoryBudgetsPartitionExactly) {
  const auto& inv = gpgpu::RtlInventory::instance();
  std::uint64_t lut_a = 0, lut_b = 0, lut_c = 0;
  std::uint64_t ff_a = 0, ff_b = 0, ff_c = 0;
  for (const auto& u : inv.units()) {
    if (u.used_by_ml) {
      lut_a += u.luts;
      ff_a += u.ffs;
    } else if (u.alu_or_decoder) {
      lut_c += u.luts;
      ff_c += u.ffs;
    } else {
      lut_b += u.luts;
      ff_b += u.ffs;
    }
  }
  EXPECT_EQ(lut_a, 36'743u);
  EXPECT_EQ(ff_a, 15'275u);
  EXPECT_EQ(lut_a + lut_b, 97'222u);   // MIAOW2.0 retained
  EXPECT_EQ(ff_a + ff_b, 70'499u);
  EXPECT_EQ(lut_a + lut_b + lut_c, 180'902u);  // full MIAOW
  EXPECT_EQ(ff_a + ff_b + ff_c, 107'001u);
}

// --------------------------------------------------------- Assembler sweep

class AssemblerSweep : public ::testing::TestWithParam<int> {};

TEST_P(AssemblerSweep, EveryOpcodeAssemblesAndDisassembles) {
  const auto op = static_cast<gpgpu::Opcode>(GetParam());
  const std::string mn(gpgpu::mnemonic(op));
  std::string operands;
  switch (gpgpu::format_of(op)) {
    case gpgpu::Format::kSop1: operands = "s4, s5"; break;
    case gpgpu::Format::kSop2: operands = "s4, s5, s6"; break;
    case gpgpu::Format::kSopk: operands = "s4, 12"; break;
    case gpgpu::Format::kSopc: operands = "s4, s5"; break;
    case gpgpu::Format::kSopp:
      operands = (mn.find("branch") != std::string::npos) ? "0" : "";
      break;
    case gpgpu::Format::kSmrd: operands = "s4, s5, 8"; break;
    case gpgpu::Format::kVop1: operands = "v2, v3"; break;
    case gpgpu::Format::kVop2: operands = "v2, v3, v4"; break;
    case gpgpu::Format::kVop3:
      operands = (mn.find("mad") != std::string::npos ||
                  mn.find("fma") != std::string::npos)
                     ? "v2, v3, v4, v5"
                     : "v2, v4, v6";  // 2-source VOP3 (f64 uses pairs)
      break;
    case gpgpu::Format::kVopc: operands = "vcc, v3, v4"; break;
    case gpgpu::Format::kFlat: operands = "v2, v3, s4"; break;
    case gpgpu::Format::kDs: operands = "v2, v3"; break;
    case gpgpu::Format::kMubuf: operands = "v2, v3, s4, v5"; break;
    case gpgpu::Format::kMimg: operands = "v2, v3"; break;
    case gpgpu::Format::kVintrp: operands = "v2, v3"; break;
    case gpgpu::Format::kExp: operands = "v2"; break;
    case gpgpu::Format::kFormatCount: FAIL();
  }
  const std::string line = "  " + mn + (operands.empty() ? "" : " " + operands);
  const auto prog = gpgpu::assemble(line + "\n");
  ASSERT_EQ(prog.code.size(), 1u);
  EXPECT_EQ(prog.code[0].op, op);
  const auto text = gpgpu::disassemble(prog);
  EXPECT_NE(text.find(mn), std::string::npos);
}

INSTANTIATE_TEST_SUITE_P(
    AllOpcodes, AssemblerSweep,
    ::testing::Range(0, static_cast<int>(gpgpu::kNumOpcodes)));

// --------------------------------------------------------- Monitored rates

class MonitoredRateSweep : public ::testing::TestWithParam<std::string> {};

TEST_P(MonitoredRateSweep, RateIsWithinServiceableBandOfTarget) {
  // The analytic window selection must land within a small factor of the
  // rate target on every benchmark — the whole Fig. 8 queueing story
  // (ML-MIAOW keeps up; MIAOW occasionally overflows) depends on it.
  const auto& p = workloads::find_profile(GetParam());
  ml::DatasetBuilder builder(p, 7);
  workloads::TraceGenerator gen(p, 99);
  const auto& monitored = builder.monitored_addresses();
  std::uint64_t events = 0;
  // Monitored events arrive in bursts of ~6.7 (call-walk dwell), so the
  // effective sample count is events/6.7: sweep long enough that the
  // 6x assertion band holds with margin.
  const std::size_t steps = 2'500'000;
  for (std::size_t i = 0; i < steps; ++i) {
    const auto s = gen.next();
    if (s.event.kind != cpu::BranchKind::kCall) continue;
    if (std::binary_search(monitored.begin(), monitored.end(),
                           s.event.target)) {
      ++events;
    }
  }
  ASSERT_GT(events, 0u) << "monitored sites never fire";
  const double interarrival =
      static_cast<double>(gen.instructions_emitted()) /
      static_cast<double>(events);
  const double target =
      builder.config().lstm_interarrival_k / p.branch_fraction;
  EXPECT_GT(interarrival, target / 6.0) << "rate too hot: " << interarrival;
  EXPECT_LT(interarrival, target * 6.0) << "rate too cold: " << interarrival;
}

INSTANTIATE_TEST_SUITE_P(AllCint2006, MonitoredRateSweep,
                         ::testing::ValuesIn(workloads::spec_names()));

// --------------------------------------------------------- Zipf sweep

class ZipfSweep : public ::testing::TestWithParam<double> {};

TEST_P(ZipfSweep, PopularityDecreasesWithRank) {
  sim::Xoshiro256 rng(7);
  sim::ZipfSampler zipf(64, GetParam());
  std::vector<int> counts(64, 0);
  for (int i = 0; i < 60'000; ++i) ++counts[zipf.sample(rng)];
  EXPECT_GT(counts[0], counts[20]);
  EXPECT_GT(counts[5], counts[50]);
}

INSTANTIATE_TEST_SUITE_P(Skews, ZipfSweep,
                         ::testing::Values(0.8, 1.0, 1.1, 1.25, 1.5));

}  // namespace
}  // namespace rtad
