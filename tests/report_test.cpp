// Report/table formatting and SW-reference model tests.
#include <gtest/gtest.h>

#include <sstream>

#include "rtad/core/report.hpp"
#include "rtad/core/sw_reference.hpp"

namespace rtad::core {
namespace {

TEST(Table, AlignsColumnsAndPrintsAllRows) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22,222"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("22,222"), std::string::npos);
  // Header separator present.
  EXPECT_NE(out.find("+="), std::string::npos);
  // All data lines share the same width.
  std::istringstream lines(out);
  std::string line;
  std::size_t width = 0;
  while (std::getline(lines, line)) {
    if (width == 0) width = line.size();
    EXPECT_EQ(line.size(), width);
  }
}

TEST(Table, RejectsMismatchedRow) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(Fmt, FixedPrecision) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt(2.0, 0), "2");
  EXPECT_EQ(fmt(-0.5, 1), "-0.5");
}

TEST(FmtCount, ThousandsSeparators) {
  EXPECT_EQ(fmt_count(0), "0");
  EXPECT_EQ(fmt_count(999), "999");
  EXPECT_EQ(fmt_count(1000), "1,000");
  EXPECT_EQ(fmt_count(1'927'294), "1,927,294");
}

TEST(SwReference, BreakdownMatchesCalibration) {
  const auto b = sw_transfer_breakdown(32);
  EXPECT_NEAR(b.step1_us, 1.1, 0.05);
  EXPECT_NEAR(b.total_us(), 20.0, 1.0);
}

TEST(SwReference, ScalesWithVectorSize) {
  const auto small = sw_transfer_breakdown(1);
  const auto big = sw_transfer_breakdown(64);
  EXPECT_EQ(small.step1_us, big.step1_us);  // read cost is per-record
  EXPECT_LT(small.step2_us, big.step2_us);
  EXPECT_LT(small.step3_us, big.step3_us);
}

TEST(SwReference, FasterClocksShrinkCpuTerms) {
  ClockPlan fast;
  fast.cpu_hz = 500'000'000;
  const auto base = sw_transfer_breakdown(32);
  const auto boosted = sw_transfer_breakdown(32, fast);
  EXPECT_NEAR(boosted.step1_us, base.step1_us / 2.0, 1e-9);
}

}  // namespace
}  // namespace rtad::core
