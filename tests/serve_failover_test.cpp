// Serve-fleet fault-domain suite.
//
// The headline contract: a fault storm (shard crashes, lane wedges,
// admission brownouts) changes *when* sessions run, never *what* they
// compute — every session that completes under the storm retires the
// byte-identical detection result it retires on a fault-free fleet (zero
// verdict divergence), and the whole recovery story (fault schedules,
// checkpoints, failover routing, retry backoff) is byte-identical across
// worker counts and scheduler kernels. A fleet with no active fault plan
// emits the exact legacy rtad.serve.v1 document: no "failure" section, no
// per-class "recovered" field.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "rtad/serve/checkpoint_store.hpp"
#include "rtad/serve/fault_domain.hpp"
#include "rtad/serve/service.hpp"
#include "rtad/sim/rng.hpp"
#include "rtad/telemetry/query.hpp"

namespace rtad::serve {
namespace {

workloads::SpecProfile fast_profile(const std::string& name) {
  auto p = workloads::find_profile(name);
  p.syscall_interval_instrs = 40'000;  // keep sim time short
  return p;
}

core::TrainingOptions fast_training() {
  core::TrainingOptions opt;
  opt.lstm_train_tokens = 2'500;
  opt.lstm_val_tokens = 700;
  opt.elm_train_windows = 250;
  opt.elm_val_windows = 80;
  opt.lstm.epochs = 2;
  return opt;
}

std::shared_ptr<core::TrainedModelCache> shared_cache() {
  static const auto cache = std::make_shared<core::TrainedModelCache>(
      fast_training(),
      [](const std::string& name) { return fast_profile(name); });
  return cache;
}

std::vector<SessionRequest> sample_requests(std::size_t n = 6) {
  std::vector<SessionRequest> reqs;
  for (std::size_t i = 0; i < n; ++i) {
    SessionRequest r;
    r.tenant = "tenant-" + std::to_string(i % 4);
    r.cls = i % 4 == 3 ? TenantClass::kBatch : TenantClass::kInteractive;
    r.benchmark = "astar";
    r.model = core::ModelKind::kLstm;
    r.arrival_ps = (1 + i) * 2 * sim::kPsPerMs;
    r.seed = 17 + 31 * i;
    r.attacks = 1;
    reqs.push_back(std::move(r));
  }
  return reqs;
}

ServiceConfig base_config() {
  ServiceConfig cfg;
  cfg.shards = 2;
  cfg.lanes = 1;
  cfg.queue_capacity = 8;
  cfg.detection.trace_path.clear();
  cfg.detection.metrics_path.clear();
  return cfg;
}

fault::ServeFaultPlan crash_storm() {
  fault::ServeFaultPlan plan;
  plan.shard_crash = 0.8;
  plan.crash_epoch_us = 4'000;
  plan.crash_downtime_us = 2'000;
  plan.horizon_us = 40'000;
  plan.max_events = 2;
  return plan;
}

std::string report_json(const ServiceConfig& cfg,
                        const ServiceReport& report) {
  std::ostringstream os;
  write_serve_json(os, cfg, report);
  return os.str();
}

/// Zero verdict divergence: every ticket completed in both reports carries
/// the byte-identical detection result (timing fields may differ — the
/// storm moves sessions in time, never in outcome).
void expect_zero_divergence(const ServiceReport& faulty,
                            const ServiceReport& clean) {
  ASSERT_EQ(faulty.outcomes.size(), clean.outcomes.size());
  for (std::size_t i = 0; i < faulty.outcomes.size(); ++i) {
    const auto& f = faulty.outcomes[i];
    const auto& c = clean.outcomes[i];
    ASSERT_EQ(f.request.ticket, c.request.ticket);
    if (f.shed || c.shed) continue;
    EXPECT_EQ(f.detection.score_digest, c.detection.score_digest) << i;
    EXPECT_EQ(f.detection.detections, c.detection.detections) << i;
    EXPECT_EQ(f.detection.inferences, c.detection.inferences) << i;
    EXPECT_EQ(f.detection.false_positives, c.detection.false_positives) << i;
    EXPECT_EQ(f.detection.simulated_ps, c.detection.simulated_ps) << i;
    EXPECT_EQ(f.detection.mean_latency_us, c.detection.mean_latency_us) << i;
  }
}

TEST(FaultDomain, SchedulesArePureFunctionsOfSeedAndShard) {
  fault::ServeFaultPlan plan;
  plan.shard_crash = 1.0;
  plan.lane_wedge = 1.0;
  plan.brownout = 1.0;
  plan.crash_epoch_us = 5'000;
  plan.brownout_us = 2'000;
  plan.horizon_us = 50'000;
  plan.max_events = 4;

  const auto a = build_shard_schedule(plan, 0xFA017, 0, 2);
  const auto b = build_shard_schedule(plan, 0xFA017, 0, 2);
  EXPECT_EQ(a.crashes, b.crashes) << "schedule must be deterministic";
  ASSERT_EQ(a.wedges.size(), b.wedges.size());
  for (std::size_t i = 0; i < a.wedges.size(); ++i) {
    EXPECT_EQ(a.wedges[i].at, b.wedges[i].at);
    EXPECT_EQ(a.wedges[i].lane, b.wedges[i].lane);
  }

  // Rate 1.0 fires every epoch until the cap; everything inside [0, horizon).
  EXPECT_EQ(a.crashes.size(), plan.max_events);
  for (const auto at : a.crashes) {
    EXPECT_LT(at, plan.horizon_us * sim::kPsPerUs);
  }
  for (const auto& w : a.brownouts) {
    EXPECT_EQ(w.end - w.begin, plan.brownout_us * sim::kPsPerUs);
  }
  EXPECT_TRUE(a.in_brownout(a.brownouts.front().begin));
  EXPECT_FALSE(a.in_brownout(a.brownouts.front().end));

  // Distinct shards draw from distinct streams.
  const auto other = build_shard_schedule(plan, 0xFA017, 1, 2);
  EXPECT_NE(a.crashes, other.crashes);

  // An all-zero plan builds no schedule at all.
  EXPECT_TRUE(
      build_shard_schedule(fault::ServeFaultPlan{}, 0xFA017, 0, 2).empty());
}

TEST(FaultDomain, RetryBackoffIsSeededBoundedAndGrows) {
  const std::uint64_t seed = 0x5EEDD;
  // Pure function of its arguments.
  EXPECT_EQ(retry_backoff_ps(seed, 3, 1, 500),
            retry_backoff_ps(seed, 3, 1, 500));
  // attempt k waits in [base << (k-1), (base << (k-1)) + base) microseconds.
  for (std::size_t attempt = 1; attempt <= 4; ++attempt) {
    const auto ps = retry_backoff_ps(seed, 3, attempt, 500);
    const std::uint64_t lo = 500ull << (attempt - 1);
    EXPECT_GE(ps, lo * sim::kPsPerUs);
    EXPECT_LT(ps, (lo + 500) * sim::kPsPerUs);
  }
  // The exponent caps, so deep retry chains stay schedulable.
  EXPECT_LT(retry_backoff_ps(seed, 3, 60, 500),
            (500ull << 7) * sim::kPsPerUs);
  // Different tickets de-synchronize (no thundering herd after a crash).
  EXPECT_NE(retry_backoff_ps(seed, 3, 1, 500),
            retry_backoff_ps(seed, 4, 1, 500));
  // Always strictly positive, even with a degenerate base.
  EXPECT_GT(retry_backoff_ps(seed, 0, 1, 0), 0u);
}

TEST(CheckpointStore, BoundsParkedBytesAndEvictsHonestly) {
  CheckpointStore store(100);
  const std::vector<std::uint8_t> blob(60, 0xAB);
  store.put(1, blob, 5);
  EXPECT_EQ(store.bytes(), 60u);
  EXPECT_EQ(store.parks(), 1u);
  EXPECT_EQ(store.evictions(), 0u);

  // Over the cap: the entry parks *empty* — the session restarts from
  // scratch on thaw (slower, never wrong) — and the eviction is counted.
  store.put(2, blob, 7);
  EXPECT_EQ(store.evictions(), 1u);
  EXPECT_EQ(store.bytes(), 60u);
  const auto evicted = store.take(2);
  ASSERT_TRUE(evicted.has_value());
  EXPECT_TRUE(evicted->blob.empty());
  EXPECT_EQ(evicted->parked_at, 7u);

  const auto kept = store.take(1);
  ASSERT_TRUE(kept.has_value());
  EXPECT_EQ(kept->blob, blob);
  EXPECT_EQ(kept->parked_at, 5u);
  EXPECT_TRUE(store.empty());
  EXPECT_FALSE(store.take(1).has_value());
  EXPECT_EQ(store.bytes_high_watermark(), 60u);
}

TEST(CheckpointStore, EvictedBlobBytesAreAccountedSeparately) {
  // Regression: put() used to record a cap-evicted blob's size into the
  // blob_bytes distribution even though the blob never occupied the store
  // — serve.checkpoint_bytes then over-reported parked bytes under
  // pressure exactly when the cap was doing its job. Evicted sizes now
  // land in their own sampler.
  CheckpointStore store(100);
  store.put(1, std::vector<std::uint8_t>(70, 0x01), 3);
  store.put(2, std::vector<std::uint8_t>(90, 0x02), 5);  // evicted
  store.put(3, std::vector<std::uint8_t>(20, 0x03), 9);

  ASSERT_EQ(store.blob_bytes().count(), 2u);
  EXPECT_EQ(store.blob_bytes().sum(), 70.0 + 20.0);
  EXPECT_EQ(store.blob_bytes().max(), 70.0);
  ASSERT_EQ(store.evicted_blob_bytes().count(), 1u);
  EXPECT_EQ(store.evicted_blob_bytes().max(), 90.0);
  // The accounted distribution matches the bytes actually resident.
  EXPECT_EQ(store.bytes(), 90u);
  EXPECT_EQ(store.evictions(), 1u);
}

TEST(ServiceFailover, FailoverTargetSkipsDownShards) {
  // heat[s] = {horizon, down_until}; the orphan re-offers at t=100.
  bool migrated = false;

  // Healthy fleet, heir cool enough: ring successor wins, no migration.
  {
    const std::vector<ShardHeat> heat{{50, 0}, {60, 0}, {55, 0}};
    EXPECT_EQ(failover_target(0, 100, heat, 1'000, &migrated), 1u);
    EXPECT_FALSE(migrated);
  }

  // Regression: the heir itself is still inside its crash downtime — the
  // ring walk must step past it to the next up shard.
  {
    const std::vector<ShardHeat> heat{{50, 0}, {10, 500}, {55, 0}};
    EXPECT_EQ(failover_target(0, 100, heat, 1'000, &migrated), 2u);
    EXPECT_FALSE(migrated);
  }

  // Regression: a freshly-crashed shard's flushed queue makes it the
  // coolest in the fleet precisely while it refuses work (here shards 0
  // and 2, horizons 50 and 5, both still down at t=100). The rebalancer
  // must steer to the coolest *up* shard, not bounce the orphan onto a
  // down one for another round of backoff.
  {
    const std::vector<ShardHeat> heat{
        {50, 500}, {9'000, 0}, {5, 500}, {80, 0}};
    EXPECT_EQ(failover_target(0, 100, heat, 1'000, &migrated), 3u);
    EXPECT_TRUE(migrated);
  }

  // Heir hot, coolest up shard within the gap: stay on the heir.
  {
    const std::vector<ShardHeat> heat{
        {50, 500}, {900, 0}, {5, 500}, {800, 0}};
    EXPECT_EQ(failover_target(0, 100, heat, 1'000, &migrated), 1u);
    EXPECT_FALSE(migrated);
  }

  // Whole fleet down: the walks degenerate to the legacy all-shard scan —
  // the orphan queues and waits, so the coolest shard still wins.
  {
    const std::vector<ShardHeat> heat{{50, 999}, {9'000, 999}, {5, 999}};
    EXPECT_EQ(failover_target(0, 100, heat, 1'000, &migrated), 2u);
    EXPECT_TRUE(migrated);
    const std::vector<ShardHeat> flat{{50, 999}, {60, 999}, {55, 999}};
    EXPECT_EQ(failover_target(0, 100, flat, 1'000, &migrated), 1u);
    EXPECT_FALSE(migrated);
  }
}

TEST(ServiceFailover, CrashStormHasZeroVerdictDivergence) {
  auto cache = shared_cache();
  auto cfg = base_config();

  Service clean_service(cfg, cache, 1);
  const auto clean = clean_service.run(sample_requests());

  auto storm_cfg = cfg;
  storm_cfg.serve_faults = crash_storm();
  storm_cfg.retry_budget = 4;
  storm_cfg.checkpoint_every = 2;
  Service storm_service(storm_cfg, cache, 1);
  const auto storm = storm_service.run(sample_requests());

  // The storm actually happened and every session still completed.
  EXPECT_GT(storm.shard_crashes, 0u);
  EXPECT_GT(storm.sessions_recovered + storm.queue_flushed, 0u);
  EXPECT_GT(storm.failover_rounds, 0u);
  EXPECT_GT(storm.checkpoints, 0u);
  EXPECT_EQ(storm.sessions_completed, clean.sessions_completed);
  EXPECT_EQ(storm.sessions_shed, 0u);
  expect_zero_divergence(storm, clean);

  // Recovery accounting is self-consistent: every restore recorded an
  // orphaned → restart latency sample.
  EXPECT_GE(static_cast<std::uint64_t>(storm.recovery_latency_us.count()),
            storm.sessions_recovered);
  if (storm.sessions_recovered > 0) {
    EXPECT_GT(storm.recovery_replay_ps, 0u);
  }
  for (const auto& o : storm.outcomes) {
    if (o.recovered) {
      EXPECT_FALSE(o.shed);
      EXPECT_GE(o.sojourn_ps, o.completion_ps - o.request.arrival_ps);
    }
  }
  EXPECT_EQ(storm.interactive.recovered + storm.batch.recovered,
            storm.sessions_recovered);
}

TEST(ServiceFailover, StormReportIdenticalAcrossWorkersAndKernels) {
  auto cache = shared_cache();
  auto cfg = base_config();
  cfg.serve_faults = crash_storm();
  cfg.serve_faults.lane_wedge = 0.4;
  cfg.serve_faults.brownout = 0.3;
  cfg.serve_faults.brownout_us = 1'500;
  cfg.retry_budget = 4;
  cfg.checkpoint_every = 2;

  auto run_with = [&](std::size_t jobs, sim::SchedMode sched) {
    ServiceConfig c = cfg;
    c.detection.sched = sched;
    Service service(c, cache, jobs);
    return report_json(c, service.run(sample_requests()));
  };

  const auto serial = run_with(1, sim::SchedMode::kDense);
  const auto parallel = run_with(8, sim::SchedMode::kDense);
  EXPECT_EQ(serial, parallel)
      << "worker count leaked into the failover report";

  // Fault schedules, retries, and failover routing live on the fleet
  // clock, not in any kernel: everything from the fleet section on is
  // byte-identical under the event-driven kernel too.
  const auto event = run_with(1, sim::SchedMode::kEventDriven);
  const auto at = [](const std::string& s) { return s.find("\"fleet\""); };
  EXPECT_EQ(serial.substr(at(serial)), event.substr(at(event)))
      << "scheduler kernel leaked into the failover report";

  EXPECT_NE(serial.find("\"failure\""), std::string::npos);
  EXPECT_NE(serial.find("serve.shard_crashes"), std::string::npos);
  EXPECT_NE(serial.find("serve.recovery_replay_ps"), std::string::npos);
  EXPECT_NE(serial.find("checkpoint_bytes"), std::string::npos);
  EXPECT_NE(serial.find("\"recovered\""), std::string::npos);
}

TEST(ServiceFailover, WedgeParksLocallyAndThawsByteIdentically) {
  auto cache = shared_cache();
  auto cfg = base_config();
  cfg.shards = 1;

  Service clean_service(cfg, cache, 1);
  const auto clean = clean_service.run(sample_requests());

  auto wedge_cfg = cfg;
  wedge_cfg.serve_faults.lane_wedge = 0.9;
  wedge_cfg.serve_faults.crash_epoch_us = 4'000;
  wedge_cfg.serve_faults.wedge_us = 3'000;
  wedge_cfg.serve_faults.horizon_us = 40'000;
  wedge_cfg.serve_faults.max_events = 2;
  wedge_cfg.checkpoint_every = 2;
  Service wedged_service(wedge_cfg, cache, 1);
  const auto wedged = wedged_service.run(sample_requests());

  EXPECT_GT(wedged.lane_wedges, 0u);
  EXPECT_EQ(wedged.shard_crashes, 0u);
  EXPECT_EQ(wedged.sessions_completed, clean.sessions_completed);
  EXPECT_EQ(wedged.sessions_shed, 0u);
  // Wedged sessions park into the shard's own store and thaw right there —
  // no cross-shard failover rounds.
  EXPECT_EQ(wedged.failover_rounds, 0u);
  if (wedged.sessions_parked > 0) {
    EXPECT_GT(wedged.sessions_recovered, 0u);
    EXPECT_GT(wedged.checkpoints, 0u);
    EXPECT_GT(wedged.parked_bytes_hwm, 0u);
    EXPECT_GT(wedged.recovery_latency_us.count(), 0u);
  }
  expect_zero_divergence(wedged, clean);
}

TEST(ServiceFailover, BrownoutRefusalsRetryWithinBudgetThenShed) {
  auto cache = shared_cache();

  // Place one arrival *inside* a known brownout window: the schedule is a
  // pure function of (plan, seed, shard), so the test can read it.
  fault::ServeFaultPlan plan;
  plan.brownout = 1.0;
  plan.crash_epoch_us = 8'000;
  plan.brownout_us = 3'000;
  plan.horizon_us = 64'000;
  plan.max_events = 1;
  const std::uint64_t seed = 0xFA017;
  const auto sched = build_shard_schedule(plan, seed, 0, 1);
  ASSERT_FALSE(sched.brownouts.empty());
  const auto window = sched.brownouts.front();

  auto requests = [&] {
    auto reqs = sample_requests(3);
    // All three tenants must route to shard 0 of 1 — single-shard fleet.
    reqs[0].arrival_ps = window.begin + sim::kPsPerUs;
    reqs[1].arrival_ps = window.begin + 2 * sim::kPsPerUs;
    reqs[2].arrival_ps = window.end + sim::kPsPerUs;
    return reqs;
  };

  auto cfg = base_config();
  cfg.shards = 1;
  cfg.serve_faults = plan;
  cfg.fault_seed = seed;

  // Budget 0: refused offers shed immediately.
  {
    Service service(cfg, cache, 1);
    const auto rep = service.run(requests());
    EXPECT_EQ(rep.brownout_refusals, 2u);
    EXPECT_EQ(rep.sessions_shed, 2u);
    EXPECT_EQ(rep.sessions_retried, 0u);
    EXPECT_EQ(rep.sessions_completed, 1u);
    EXPECT_TRUE(rep.outcomes[0].shed);
    EXPECT_TRUE(rep.outcomes[1].shed);
    EXPECT_FALSE(rep.outcomes[2].shed);
  }

  // With budget: seeded-jitter backoff carries the refused offers past the
  // window and every session completes.
  {
    auto retry_cfg = cfg;
    retry_cfg.retry_budget = 4;
    Service service(retry_cfg, cache, 1);
    const auto rep = service.run(requests());
    EXPECT_GE(rep.brownout_refusals, 2u);
    EXPECT_EQ(rep.sessions_shed, 0u);
    EXPECT_GT(rep.sessions_retried, 0u);
    EXPECT_EQ(rep.sessions_completed, 3u);
    // Retries delay sessions; they never change their verdicts.
    auto clean_cfg = base_config();
    clean_cfg.shards = 1;
    Service clean_service(clean_cfg, cache, 1);
    expect_zero_divergence(rep, clean_service.run(requests()));
  }
}

TEST(ServiceFailover, RebalancerMigratesOffHotShardsUnderZipfSkew) {
  auto cache = shared_cache();

  // A Zipf-skewed tenant mix: rank 0 dominates. Order the tenant name pool
  // so the dominant tenant routes to shard 1 — the ring heir of shard 0 —
  // which makes the heir hot when shard 0's sessions fail over.
  std::vector<std::string> pool;
  for (int i = 0; pool.size() < 1 && i < 64; ++i) {
    const std::string t = "zipf-" + std::to_string(i);
    if (shard_for(t, 3) == 1) pool.push_back(t);
  }
  for (int i = 0; pool.size() < 4 && i < 64; ++i) {
    const std::string t = "skew-" + std::to_string(i);
    if (shard_for(t, 3) != 1) pool.push_back(t);
  }
  ASSERT_EQ(pool.size(), 4u);

  sim::Xoshiro256 rng(7);
  const sim::ZipfSampler zipf(pool.size(), 1.4);
  std::vector<SessionRequest> reqs;
  for (std::size_t i = 0; i < 7; ++i) {
    SessionRequest r;
    r.tenant = pool[zipf.sample(rng)];
    r.benchmark = "astar";
    r.model = core::ModelKind::kLstm;
    r.arrival_ps = (1 + i) * sim::kPsPerMs;
    r.seed = 17 + 31 * i;
    r.attacks = 1;
    reqs.push_back(std::move(r));
  }
  // Guarantee at least one session on the crashing shard 0.
  bool on_zero = false;
  for (const auto& r : reqs) on_zero |= shard_for(r.tenant, 3) == 0;
  if (!on_zero) {
    for (int i = 0; i < 64 && !on_zero; ++i) {
      const std::string t = "crashy-" + std::to_string(i);
      if (shard_for(t, 3) == 0) {
        reqs[reqs.size() - 1].tenant = t;
        on_zero = true;
      }
    }
  }
  ASSERT_TRUE(on_zero);

  auto cfg = base_config();
  cfg.shards = 3;
  cfg.serve_faults.shard_crash = 1.0;
  cfg.serve_faults.crash_epoch_us = 6'000;
  cfg.serve_faults.crash_downtime_us = 2'000;
  cfg.serve_faults.horizon_us = 12'000;
  cfg.serve_faults.max_events = 1;
  cfg.retry_budget = 4;
  cfg.checkpoint_every = 2;
  cfg.rebalance_gap_ps = sim::kPsPerUs;  // any real gap triggers migration

  Service service(cfg, cache, 1);
  const auto rep = service.run(reqs);
  EXPECT_GT(rep.shard_crashes, 0u);
  EXPECT_GT(rep.migrations, 0u)
      << "no failover re-offer was steered off the hot ring heir";
  EXPECT_EQ(rep.sessions_shed, 0u);
  EXPECT_EQ(rep.sessions_completed, reqs.size());

  // Migration decisions live on the fleet clock: identical for any jobs.
  Service wide(cfg, cache, 8);
  EXPECT_EQ(report_json(cfg, rep), report_json(cfg, wide.run(reqs)));
}

TEST(ServiceFailover, StormKeepsTenantTelemetryStreamsIntact) {
  // The telemetry contract under faults: a tenant's stream ticks on the
  // stream clock (origin arrival + session time), samples stage per
  // quantum and only commit at checkpoint boundaries, and a fault
  // interrupt discards the staged tail — the restored session re-executes
  // that work and re-emits it byte-identically. So the storm fleet's
  // per-tenant (at_ps, score, flagged) streams must equal the fault-free
  // fleet's exactly; only the health markers (restore events) may differ.
  auto cache = shared_cache();
  auto cfg = base_config();

  Service clean_service(cfg, cache, 1);
  const auto clean = clean_service.run(sample_requests());

  auto storm_cfg = cfg;
  storm_cfg.serve_faults = crash_storm();
  storm_cfg.retry_budget = 4;
  storm_cfg.checkpoint_every = 2;
  Service storm_service(storm_cfg, cache, 1);
  const auto storm = storm_service.run(sample_requests());

  ASSERT_TRUE(clean.telemetry);
  ASSERT_TRUE(storm.telemetry);
  EXPECT_GT(storm.shard_crashes, 0u);
  EXPECT_EQ(storm.sessions_shed, 0u);

  EXPECT_EQ(storm.telemetry->tenants(), clean.telemetry->tenants());
  EXPECT_EQ(storm.telemetry->samples(), clean.telemetry->samples());
  EXPECT_EQ(storm.telemetry->flagged(), clean.telemetry->flagged());
  for (const auto& [tenant, stream] : clean.telemetry->streams()) {
    const auto want = telemetry::series(*clean.telemetry, tenant, 0, 0,
                                        ~sim::Picoseconds{0});
    const auto got = telemetry::series(*storm.telemetry, tenant, 0, 0,
                                       ~sim::Picoseconds{0});
    ASSERT_EQ(got.points.size(), want.points.size()) << tenant;
    for (std::size_t i = 0; i < want.points.size(); ++i) {
      EXPECT_EQ(got.points[i].at_ps, want.points[i].at_ps) << tenant;
      EXPECT_EQ(got.points[i].score, want.points[i].score) << tenant;
      EXPECT_EQ(got.points[i].flagged, want.points[i].flagged) << tenant;
    }
  }

  // The restore markers land in the storm streams only.
  std::uint64_t storm_health = 0;
  for (const auto& [tenant, stream] : storm.telemetry->streams()) {
    storm_health += stream.health;
  }
  EXPECT_GE(storm_health, 0u);
  for (const auto& [tenant, stream] : clean.telemetry->streams()) {
    EXPECT_EQ(stream.health, 0u) << tenant;
  }
}

TEST(ServiceFailover, FaultFreeFleetEmitsLegacyDocument) {
  auto cache = shared_cache();
  const auto cfg = base_config();
  Service service(cfg, cache, 1);
  const auto json = report_json(cfg, service.run(sample_requests()));

  // No failure section, no per-class recovery field — byte-for-byte the
  // pre-failover document shape.
  EXPECT_EQ(json.find("\"failure\""), std::string::npos);
  EXPECT_EQ(json.find("\"recovered\""), std::string::npos);
  EXPECT_EQ(json.find("serve.shard_crashes"), std::string::npos);
  EXPECT_NE(json.find("\"schema\""), std::string::npos);
  EXPECT_NE(json.find("rtad.serve.v1"), std::string::npos);
}

}  // namespace
}  // namespace rtad::serve
