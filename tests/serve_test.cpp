// Serving-layer regression suite.
//
// The two headline contracts:
//   1. A chunk-fed DetectionSession is byte-identical to the one-shot
//      measure_detection path — for any chunk size, under both scheduler
//      kernels (score digest, latencies, health counters, simulated time).
//   2. The Service report (and its rtad.serve.v1 JSON) is byte-identical
//      for any worker count and any advance() quantum.
// Plus unit coverage for admission control (shed / degrade / watermark)
// and the stable tenant → shard routing.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "rtad/core/detection_session.hpp"
#include "rtad/core/experiment_runner.hpp"
#include "rtad/serve/service.hpp"
#include "rtad/telemetry/query.hpp"

namespace rtad::serve {
namespace {

workloads::SpecProfile fast_profile(const std::string& name) {
  auto p = workloads::find_profile(name);
  p.syscall_interval_instrs = 40'000;  // keep sim time short
  return p;
}

core::TrainingOptions fast_training() {
  core::TrainingOptions opt;
  opt.lstm_train_tokens = 2'500;
  opt.lstm_val_tokens = 700;
  opt.elm_train_windows = 250;
  opt.elm_val_windows = 80;
  opt.lstm.epochs = 2;
  return opt;
}

std::shared_ptr<core::TrainedModelCache> shared_cache() {
  static const auto cache = std::make_shared<core::TrainedModelCache>(
      fast_training(),
      [](const std::string& name) { return fast_profile(name); });
  return cache;
}

/// Every deterministic DetectionResult field. The sim.skipped* diagnostics
/// are deliberately absent: chunk boundaries change how the event kernel
/// *groups* its skips (never what any component computes), so they are the
/// one mode-dependent quantity — same exclusion the metrics export makes.
void expect_identical(const core::DetectionResult& a,
                      const core::DetectionResult& b) {
  EXPECT_EQ(a.benchmark, b.benchmark);
  EXPECT_EQ(a.attacks, b.attacks);
  EXPECT_EQ(a.detections, b.detections);
  EXPECT_EQ(a.mean_latency_us, b.mean_latency_us);
  EXPECT_EQ(a.min_latency_us, b.min_latency_us);
  EXPECT_EQ(a.max_latency_us, b.max_latency_us);
  EXPECT_EQ(a.fifo_drops, b.fifo_drops);
  EXPECT_EQ(a.false_positives, b.false_positives);
  EXPECT_EQ(a.inferences, b.inferences);
  EXPECT_EQ(a.score_digest, b.score_digest);
  EXPECT_EQ(a.simulated_ps, b.simulated_ps);
  EXPECT_EQ(a.trace_bytes_corrupted, b.trace_bytes_corrupted);
  EXPECT_EQ(a.decode_bad_packets, b.decode_bad_packets);
  EXPECT_EQ(a.decode_resyncs, b.decode_resyncs);
  EXPECT_EQ(a.ta_dropped_branches, b.ta_dropped_branches);
  EXPECT_EQ(a.mcm_recoveries, b.mcm_recoveries);
  EXPECT_EQ(a.mcm_stalls_injected, b.mcm_stalls_injected);
  EXPECT_EQ(a.irqs_lost, b.irqs_lost);
  EXPECT_EQ(a.bus_errors, b.bus_errors);
  EXPECT_EQ(a.bus_fault_cycles, b.bus_fault_cycles);
  EXPECT_EQ(a.fault_events, b.fault_events);
}

core::DetectionOptions session_options(sim::SchedMode sched) {
  core::DetectionOptions opt;
  opt.attacks = 2;
  opt.sched = sched;
  opt.trace_path.clear();
  opt.metrics_path.clear();
  return opt;
}

TEST(DetectionSession, ChunkFedMatchesOneShotUnderBothKernels) {
  auto cache = shared_cache();
  const auto profile = cache->profile("astar");
  const auto& models = cache->get("astar");

  for (const auto sched :
       {sim::SchedMode::kDense, sim::SchedMode::kEventDriven}) {
    SCOPED_TRACE(sched == sim::SchedMode::kDense ? "dense" : "event");
    const auto opt = session_options(sched);
    const auto one_shot = core::measure_detection(
        profile, models, core::ModelKind::kLstm, core::EngineKind::kMlMiaow,
        opt);

    for (const sim::Picoseconds chunk :
         {700 * sim::kPsPerUs, 3 * sim::kPsPerMs}) {
      SCOPED_TRACE("chunk_us=" + std::to_string(chunk / sim::kPsPerUs));
      core::DetectionSession session(profile, models, core::ModelKind::kLstm,
                                     core::EngineKind::kMlMiaow, opt);
      EXPECT_THROW(session.result(), std::logic_error);
      std::size_t chunks = 0;
      sim::Picoseconds last_now = 0;
      std::uint64_t last_inferences = 0;
      while (session.advance(chunk)) {
        ++chunks;
        // Streaming polls are valid (and monotone) at every boundary.
        EXPECT_GE(session.now(), last_now);
        EXPECT_GE(session.inferences(), last_inferences);
        last_now = session.now();
        last_inferences = session.inferences();
      }
      EXPECT_TRUE(session.done());
      EXPECT_GT(chunks, 1u) << "chunk so large the run was one-shot anyway";
      EXPECT_EQ(session.attacks_completed(), opt.attacks);
      expect_identical(session.result(), one_shot);
      EXPECT_GE(session.anomaly_flags(), one_shot.detections);
      EXPECT_GT(session.irqs_fired(), 0u);
    }
  }
}

std::vector<SessionRequest> sample_requests() {
  // Four tenants, mixed classes/models, arrivals tight enough that lanes
  // contend and the queue is exercised.
  std::vector<SessionRequest> reqs;
  for (std::size_t i = 0; i < 5; ++i) {
    SessionRequest r;
    r.tenant = "tenant-" + std::to_string(i % 4);
    r.cls = i % 4 == 3 ? TenantClass::kBatch : TenantClass::kInteractive;
    r.benchmark = "astar";
    r.model = r.cls == TenantClass::kBatch ? core::ModelKind::kElm
                                           : core::ModelKind::kLstm;
    r.arrival_ps = (1 + i) * 2 * sim::kPsPerMs;
    r.seed = 17 + 31 * i;
    r.attacks = 1;
    reqs.push_back(std::move(r));
  }
  return reqs;
}

std::string report_json(const ServiceConfig& cfg,
                        const ServiceReport& report) {
  std::ostringstream os;
  write_serve_json(os, cfg, report);
  return os.str();
}

TEST(Service, ReportIdenticalAcrossWorkerCountsAndQuantum) {
  auto cache = shared_cache();
  ServiceConfig cfg;
  cfg.shards = 2;
  cfg.lanes = 1;
  cfg.queue_capacity = 4;
  cfg.detection.trace_path.clear();
  cfg.detection.metrics_path.clear();

  auto run_with = [&](std::size_t jobs, sim::Picoseconds quantum) {
    ServiceConfig c = cfg;
    c.quantum_ps = quantum;
    Service service(c, cache, jobs);
    return report_json(c, service.run(sample_requests()));
  };

  const auto serial = run_with(1, 2 * sim::kPsPerMs);
  const auto parallel = run_with(8, 2 * sim::kPsPerMs);
  EXPECT_EQ(serial, parallel) << "worker count leaked into the serve report";

  // The quantum echoes in the config section; results must not move. The
  // telemetry section is the one deliberate exception — it samples once
  // per quantum, which is why it sits last in the document: everything
  // before it (fleet counters, SLOs, depth distribution) must be
  // quantum-invariant, so compare that prefix.
  const auto fine = run_with(1, 700 * sim::kPsPerUs);
  const auto invariant = [](const std::string& s) {
    const auto from = s.find("\"fleet\"");
    const auto to = s.find("\"telemetry\"");
    EXPECT_NE(from, std::string::npos);
    EXPECT_NE(to, std::string::npos);
    return s.substr(from, to - from);
  };
  EXPECT_EQ(invariant(serial), invariant(fine))
      << "advance() quantum leaked into results";
}

TEST(Service, TelemetrySectionIsOrderedAndJobsInvariant) {
  auto cache = shared_cache();
  ServiceConfig cfg;
  cfg.shards = 2;
  cfg.lanes = 1;
  cfg.queue_capacity = 8;
  cfg.detection.trace_path.clear();
  cfg.detection.metrics_path.clear();

  Service service(cfg, cache, 1);
  const auto report = service.run(sample_requests());
  ASSERT_TRUE(report.telemetry);
  const telemetry::TelemetryStore& tel = *report.telemetry;

  // Every completed session left a stream; streams tick on the stream
  // clock (origin arrival + session time), non-decreasing per tenant (a
  // tenant's concurrent sessions may tick the same instant — distinct
  // tickets keep both samples).
  EXPECT_EQ(tel.tenants(), 4u);
  EXPECT_GT(tel.samples(), 0u);
  for (const auto& [tenant, stream] : tel.streams()) {
    const auto series =
        telemetry::series(tel, tenant, 0, 0, ~sim::Picoseconds{0});
    ASSERT_FALSE(series.points.empty()) << tenant;
    for (std::size_t i = 1; i < series.points.size(); ++i) {
      EXPECT_GE(series.points[i].at_ps, series.points[i - 1].at_ps) << tenant;
    }
    EXPECT_EQ(stream.samples, series.points.size()) << tenant;
  }

  // The ranked query is a total order over the store, and the whole
  // document — telemetry included — is byte-identical across worker
  // counts (per-shard single-writer rings merged in shard-index order).
  const auto ranked = telemetry::rank_tenants(tel);
  EXPECT_EQ(ranked.size(), tel.tenants());
  const std::string json = report_json(cfg, report);
  EXPECT_NE(json.find("\"telemetry\""), std::string::npos);
  EXPECT_NE(json.find("serve.telemetry_samples"), std::string::npos);
  Service wide(cfg, cache, 8);
  EXPECT_EQ(json, report_json(cfg, wide.run(sample_requests())))
      << "worker count leaked into the telemetry section";
}

TEST(Service, OutcomesComeBackInSubmissionOrderWithExactTimes) {
  auto cache = shared_cache();
  ServiceConfig cfg;
  cfg.shards = 1;
  cfg.lanes = 1;
  cfg.queue_capacity = 8;
  cfg.detection.trace_path.clear();
  cfg.detection.metrics_path.clear();
  Service service(cfg, cache, 1);

  const auto report = service.run(sample_requests());
  ASSERT_EQ(report.outcomes.size(), 5u);
  for (std::size_t i = 0; i < report.outcomes.size(); ++i) {
    const auto& o = report.outcomes[i];
    EXPECT_EQ(o.request.ticket, i);
    EXPECT_FALSE(o.shed);
    // One lane: FIFO service, exact virtual-time bookkeeping.
    EXPECT_GE(o.start_ps, o.request.arrival_ps);
    EXPECT_EQ(o.completion_ps, o.start_ps + o.service_ps);
    EXPECT_EQ(o.sojourn_ps, o.completion_ps - o.request.arrival_ps);
    EXPECT_EQ(o.service_ps, o.detection.simulated_ps);
    if (i > 0) {
      EXPECT_GE(o.start_ps, report.outcomes[i - 1].completion_ps);
    }
  }
  EXPECT_EQ(report.sessions_completed, 5u);
  EXPECT_EQ(report.sessions_shed, 0u);
  EXPECT_EQ(report.interactive.completed + report.batch.completed, 5u);
}

TEST(Service, MixedFleetAssignsProtocolsByTenantHash) {
  auto cache = shared_cache();

  // Pick two tenants per protocol so the mixed fleet is guaranteed
  // heterogeneous regardless of how the hash bit falls on any one name.
  std::vector<std::string> tenants;
  {
    std::size_t pft = 0, etrace = 0;
    for (int i = 0; tenants.size() < 4 && i < 64; ++i) {
      const std::string t = "tenant-" + std::to_string(i);
      if (tenant_protocol(t) == trace::TraceProtocol::kEtrace) {
        if (etrace++ < 2) tenants.push_back(t);
      } else {
        if (pft++ < 2) tenants.push_back(t);
      }
    }
    ASSERT_EQ(tenants.size(), 4u) << "hash bit degenerate over 64 tenants";
  }

  auto requests = [&] {
    std::vector<SessionRequest> reqs;
    for (std::size_t i = 0; i < 6; ++i) {
      SessionRequest r;
      r.tenant = tenants[i % tenants.size()];
      r.benchmark = "astar";
      r.model = core::ModelKind::kElm;
      r.arrival_ps = (1 + i) * 2 * sim::kPsPerMs;
      r.seed = 17 + 31 * i;
      r.attacks = 1;
      reqs.push_back(std::move(r));
    }
    return reqs;
  };

  ServiceConfig cfg;
  cfg.shards = 2;
  cfg.lanes = 1;
  cfg.queue_capacity = 8;
  cfg.proto = FleetProtocol::kMixed;
  cfg.detection.trace_path.clear();
  cfg.detection.metrics_path.clear();

  Service service(cfg, cache, 1);
  const auto report = service.run(requests());
  ASSERT_EQ(report.outcomes.size(), 6u);
  for (const auto& o : report.outcomes) {
    EXPECT_EQ(o.request.proto, tenant_protocol(o.request.tenant))
        << o.request.tenant;
    EXPECT_EQ(o.detection.trace_protocol, o.request.proto)
        << "SoC frontend did not honor the assigned protocol";
  }
  EXPECT_GT(report.sessions_pft, 0u);
  EXPECT_GT(report.sessions_etrace, 0u);
  EXPECT_EQ(report.sessions_pft + report.sessions_etrace,
            report.sessions_completed);

  // The heterogeneous report is still byte-identical across worker counts.
  Service wide(cfg, cache, 8);
  EXPECT_EQ(report_json(cfg, report), report_json(cfg, wide.run(requests())))
      << "worker count leaked into the mixed-fleet report";

  const std::string json = report_json(cfg, report);
  EXPECT_NE(json.find("\"proto\""), std::string::npos);
  EXPECT_NE(json.find("mixed"), std::string::npos);
  EXPECT_NE(json.find("serve.sessions_etrace"), std::string::npos);
}

TEST(Service, ForcedFleetProtocolOverridesRequests) {
  auto cache = shared_cache();
  ServiceConfig cfg;
  cfg.shards = 1;
  cfg.lanes = 1;
  cfg.queue_capacity = 8;
  cfg.proto = FleetProtocol::kEtrace;
  cfg.detection.trace_path.clear();
  cfg.detection.metrics_path.clear();
  Service service(cfg, cache, 1);

  auto reqs = sample_requests();
  for (auto& r : reqs) r.proto = trace::TraceProtocol::kPft;  // ignored
  const auto report = service.run(std::move(reqs));
  EXPECT_EQ(report.sessions_etrace, report.sessions_completed);
  EXPECT_EQ(report.sessions_pft, 0u);
  for (const auto& o : report.outcomes) {
    EXPECT_EQ(o.request.proto, trace::TraceProtocol::kEtrace);
    EXPECT_EQ(o.detection.trace_protocol, trace::TraceProtocol::kEtrace);
  }
}

TEST(Admission, ShedsNewestWhenFull) {
  AdmissionConfig cfg;
  cfg.queue_capacity = 2;
  cfg.policy = OverloadPolicy::kShed;
  AdmissionController admission(cfg);

  SessionRequest req;
  req.tenant = "t";
  EXPECT_EQ(admission.offer(req), AdmissionController::Verdict::kAccepted);
  EXPECT_EQ(admission.offer(req), AdmissionController::Verdict::kAccepted);
  EXPECT_EQ(admission.offer(req), AdmissionController::Verdict::kShed);
  EXPECT_EQ(admission.offered(), 3u);
  EXPECT_EQ(admission.admitted(), 2u);
  EXPECT_EQ(admission.shed(), 1u);
  EXPECT_EQ(admission.degraded(), 0u);
  EXPECT_EQ(admission.depth(), 2u);
  // Depth is sampled after each arrival's own verdict: the two admits see
  // occupancy 1 and 2 (themselves included), the shed sees the full queue
  // — 1, 2, 2.
  ASSERT_EQ(admission.depth_seen().count(), 3u);
  EXPECT_EQ(admission.depth_seen().min(), 1.0);
  EXPECT_EQ(admission.depth_seen().max(), 2.0);
  // FIFO drain; nothing was reordered.
  EXPECT_FALSE(admission.next()->degraded);
  EXPECT_FALSE(admission.next()->degraded);
  EXPECT_FALSE(admission.next().has_value());
}

TEST(Admission, DepthDistributionReachesCapacityExactlyWhenShedding) {
  // Regression: offer() used to sample the depth *before* its own
  // try_push, so a saturated capacity-C queue reported max depth C-1 —
  // every sample taken while sheds were happening undercounted by one and
  // the distribution could never show the queue full. Post-verdict
  // sampling makes max == capacity iff at least one offer shed.
  AdmissionConfig cfg;
  cfg.queue_capacity = 3;
  cfg.policy = OverloadPolicy::kShed;
  AdmissionController admission(cfg);

  SessionRequest req;
  req.tenant = "t";
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(admission.offer(req), AdmissionController::Verdict::kAccepted);
  }
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(admission.offer(req), AdmissionController::Verdict::kShed);
  }
  ASSERT_EQ(admission.depth_seen().count(), 7u);
  EXPECT_EQ(admission.depth_seen().max(),
            static_cast<double>(cfg.queue_capacity))
      << "a full queue must be visible in the depth distribution";
  // Each shed observed the whole capacity-3 queue: samples 1,2,3,3,3,3,3.
  EXPECT_EQ(admission.depth_seen().sum(), 1.0 + 2.0 + 3.0 * 5);
}

TEST(Admission, DegradesAboveWatermarkAndStillBoundsTheQueue) {
  AdmissionConfig cfg;
  cfg.queue_capacity = 4;
  cfg.policy = OverloadPolicy::kDegrade;  // watermark resolves to 2
  AdmissionController admission(cfg);
  EXPECT_EQ(admission.config().degrade_watermark, 2u);

  SessionRequest req;
  req.tenant = "t";
  EXPECT_EQ(admission.offer(req), AdmissionController::Verdict::kAccepted);
  EXPECT_EQ(admission.offer(req), AdmissionController::Verdict::kAccepted);
  EXPECT_EQ(admission.offer(req),
            AdmissionController::Verdict::kAcceptedDegraded);
  EXPECT_EQ(admission.offer(req),
            AdmissionController::Verdict::kAcceptedDegraded);
  // Full queue still sheds — degrade never unbounds the ingress.
  EXPECT_EQ(admission.offer(req), AdmissionController::Verdict::kShed);
  EXPECT_EQ(admission.admitted(), 4u);
  EXPECT_EQ(admission.degraded(), 2u);
  EXPECT_EQ(admission.shed(), 1u);
  EXPECT_FALSE(admission.next()->degraded);
  EXPECT_FALSE(admission.next()->degraded);
  EXPECT_TRUE(admission.next()->degraded);
  EXPECT_TRUE(admission.next()->degraded);
}

TEST(Routing, StableHashSpreadsTenantsAcrossShards) {
  // FNV-1a offset basis: the hash is pinned to the published constants,
  // not to std::hash (which is free to differ per platform/build).
  EXPECT_EQ(tenant_hash(""), 14695981039346656037ULL);
  EXPECT_EQ(tenant_hash("tenant-0"), tenant_hash("tenant-0"));
  EXPECT_NE(tenant_hash("tenant-0"), tenant_hash("tenant-1"));

  bool spread = false;
  for (int i = 0; i < 12; ++i) {
    const std::string tenant = "tenant-" + std::to_string(i);
    const std::size_t shard = shard_for(tenant, 4);
    EXPECT_LT(shard, 4u);
    EXPECT_EQ(shard, shard_for(tenant, 4)) << "routing must be stable";
    EXPECT_EQ(shard_for(tenant, 1), 0u);
    if (shard != shard_for("tenant-0", 4)) spread = true;
  }
  EXPECT_TRUE(spread) << "12 tenants all hashed to one shard of 4";
}

}  // namespace
}  // namespace rtad::serve
