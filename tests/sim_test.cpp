// Simulation-kernel unit tests: clocks, scheduler, FIFOs, RNG, stats.
#include <gtest/gtest.h>

#include <limits>

#include "rtad/sim/clock.hpp"
#include "rtad/sim/fifo.hpp"
#include "rtad/sim/rng.hpp"
#include "rtad/sim/simulator.hpp"
#include "rtad/sim/stats.hpp"

namespace rtad::sim {
namespace {

class TickCounter final : public Component {
 public:
  explicit TickCounter(std::string name) : Component(std::move(name)) {}
  void tick() override { ++ticks; }
  void reset() override { ticks = 0; }
  std::uint64_t ticks = 0;
};

TEST(ClockDomain, PeriodsAreExact) {
  ClockDomain cpu("cpu", 250'000'000);
  ClockDomain fabric("fabric", 125'000'000);
  ClockDomain gpu("gpu", 50'000'000);
  EXPECT_EQ(cpu.period_ps(), 4'000u);
  EXPECT_EQ(fabric.period_ps(), 8'000u);
  EXPECT_EQ(gpu.period_ps(), 20'000u);
}

TEST(ClockDomain, RejectsNonIntegerPeriod) {
  EXPECT_THROW(ClockDomain("odd", 333'333'333), std::invalid_argument);
  EXPECT_THROW(ClockDomain("zero", 0), std::invalid_argument);
}

TEST(ClockDomain, CycleConversions) {
  ClockDomain gpu("gpu", 50'000'000);
  EXPECT_EQ(gpu.cycles_to_ps(5), 100'000u);
  EXPECT_EQ(gpu.ps_to_cycles(100'000), 5u);
  EXPECT_EQ(gpu.ps_to_cycles(99'999), 4u);
}

TEST(Simulator, TicksAtFrequencyRatio) {
  Simulator sim;
  auto& fast = sim.add_clock("fast", 250'000'000);
  auto& slow = sim.add_clock("slow", 50'000'000);
  TickCounter a("a"), b("b");
  sim.attach(fast, a);
  sim.attach(slow, b);
  sim.run_until(kPsPerUs);  // 1 us
  EXPECT_EQ(a.ticks, 250u);
  EXPECT_EQ(b.ticks, 50u);
}

TEST(Simulator, CoincidentEdgesFireFastDomainFirst) {
  Simulator sim;
  auto& fast = sim.add_clock("fast", 250'000'000);
  auto& slow = sim.add_clock("slow", 125'000'000);
  std::vector<std::string> order;
  class Probe final : public Component {
   public:
    Probe(std::string name, std::vector<std::string>& log)
        : Component(name), log_(log) {}
    void tick() override { log_.push_back(name()); }
    std::vector<std::string>& log_;
  };
  Probe pf("fast", order), ps("slow", order);
  sim.attach(fast, pf);
  sim.attach(slow, ps);
  sim.run_until(8'000);  // one slow edge at 8 ns, fast edges at 4 and 8 ns
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], "fast");
  EXPECT_EQ(order[1], "fast");  // 8 ns edge: fast (registered first) ...
  EXPECT_EQ(order[2], "slow");  // ... then slow
}

TEST(Simulator, RunWhileStopsOnPredicate) {
  Simulator sim;
  auto& clk = sim.add_clock("clk", 100'000'000);
  TickCounter c("c");
  sim.attach(clk, c);
  sim.run_while([&] { return c.ticks < 10; }, kPsPerMs);
  EXPECT_EQ(c.ticks, 10u);
}

TEST(Simulator, RunCyclesAdvancesExactCount) {
  Simulator sim;
  auto& clk = sim.add_clock("clk", 125'000'000);
  TickCounter c("c");
  sim.attach(clk, c);
  sim.run_cycles(clk, 17);
  EXPECT_EQ(c.ticks, 17u);
  EXPECT_EQ(clk.cycles(), 17u);
}

TEST(Simulator, ResetRewindsTimeAndComponents) {
  Simulator sim;
  auto& clk = sim.add_clock("clk", 125'000'000);
  TickCounter c("c");
  sim.attach(clk, c);
  sim.run_cycles(clk, 5);
  sim.reset();
  EXPECT_EQ(sim.now(), 0u);
  EXPECT_EQ(c.ticks, 0u);
  EXPECT_EQ(clk.cycles(), 0u);
}

TEST(Simulator, ThrowsWithNoComponents) {
  Simulator sim;
  sim.add_clock("clk", 1'000'000);
  EXPECT_THROW(sim.run_cycles(*&sim.add_clock("c2", 1'000'000), 1),
               std::runtime_error);
}

TEST(Simulator, AttachToEmptyDomainMidRunClampsNextEdge) {
  Simulator sim;
  auto& running = sim.add_clock("running", 250'000'000);  // 4 ns
  auto& late = sim.add_clock("late", 125'000'000);        // 8 ns
  TickCounter a("a");
  sim.attach(running, a);
  sim.run_until(102'000);
  // First component lands in a domain that never advanced its edge clock;
  // its first edge must be the first multiple of the period >= now (104 ns),
  // not a stale edge in the past.
  TickCounter b("b");
  sim.attach(late, b);
  sim.run_until(120'000);
  EXPECT_EQ(b.ticks, 3u);  // edges at 104, 112, 120 ns
  EXPECT_EQ(late.cycles(), 3u);
}

TEST(Simulator, RunWhileAdvancesNowOnEdgeExhaustion) {
  Simulator sim;
  auto& clk = sim.add_clock("clk", 125'000'000);
  TickCounter c("c");
  sim.attach(clk, c);
  const Picoseconds stopped = sim.run_while([] { return true; }, 123'456);
  EXPECT_EQ(stopped, 123'456u);  // matches run_until semantics
  EXPECT_EQ(sim.now(), 123'456u);
}

namespace {

/// Does real work on one tick, then reports idle for `idle_span` cycles.
class PeriodicWorker final : public Component {
 public:
  PeriodicWorker(std::string name, Cycle idle_span)
      : Component(std::move(name)), idle_span_(idle_span) {}
  void tick() override { ++ticks; }
  WakeHint next_wake() const override { return WakeHint::idle_for(idle_span_); }
  void on_cycles_skipped(Cycle n) override { skipped += n; }
  std::uint64_t ticks = 0;
  std::uint64_t skipped = 0;

 private:
  Cycle idle_span_;
};

/// Ticks once, then sleeps until an external request_wake().
class BlockedAfterFirstTick final : public Component {
 public:
  explicit BlockedAfterFirstTick(std::string name)
      : Component(std::move(name)) {}
  void tick() override { ++ticks; }
  WakeHint next_wake() const override { return WakeHint::blocked(); }
  void on_cycles_skipped(Cycle n) override { skipped += n; }
  std::uint64_t ticks = 0;
  std::uint64_t skipped = 0;
};

}  // namespace

TEST(EventScheduler, SkipsIdleCyclesAndReplaysThemExactly) {
  Simulator sim;
  sim.set_mode(SchedMode::kEventDriven);
  auto& clk = sim.add_clock("clk", 125'000'000);  // 8 ns period
  PeriodicWorker w("w", 9);
  sim.attach(clk, w);
  sim.run_until(80 * 8'000);  // 80 edges on the dense grid
  // Fires at edges 1, 11, 21, ..., 71 (idle_for(9) after each), then the
  // tail is fast-forwarded: every dense cycle is accounted for.
  EXPECT_EQ(w.ticks, 8u);
  EXPECT_EQ(w.skipped, 72u);
  EXPECT_EQ(clk.cycles(), 80u);
  EXPECT_EQ(sim.stats().counter("sim.skipped_cycles.clk").value(), 72u);
  EXPECT_EQ(sim.stats().counter("sim.skipped_edge_groups").value(), 72u);
}

TEST(EventScheduler, DenseModeNeverSkips) {
  Simulator sim;
  sim.set_mode(SchedMode::kDense);
  auto& clk = sim.add_clock("clk", 125'000'000);
  PeriodicWorker w("w", 9);
  sim.attach(clk, w);
  sim.run_until(80 * 8'000);
  EXPECT_EQ(w.ticks, 80u);
  EXPECT_EQ(w.skipped, 0u);
  EXPECT_EQ(sim.stats().counter("sim.skipped_edge_groups").value(), 0u);
}

namespace {

/// Pushes `count` items into a FIFO after `delay` warm-up ticks.
class DelayedProducer final : public Component {
 public:
  DelayedProducer(std::string name, Fifo<int>& out, Cycle delay, int count)
      : Component(std::move(name)), out_(out), delay_(delay), count_(count) {}
  void tick() override {
    if (delay_ > 0) {
      --delay_;
      return;
    }
    if (count_ > 0) {
      out_.try_push(1);
      --count_;
    }
  }
  WakeHint next_wake() const override {
    if (delay_ > 0) return WakeHint::idle_for(delay_);
    return count_ > 0 ? WakeHint::active() : WakeHint::blocked();
  }
  void on_cycles_skipped(Cycle n) override { delay_ -= n; }

 private:
  Fifo<int>& out_;
  Cycle delay_;
  int count_;
};

/// Pops one item per tick; blocked while its input FIFO is empty.
class FifoConsumer final : public Component {
 public:
  FifoConsumer(std::string name, Fifo<int>& in)
      : Component(std::move(name)), in_(in) {
    in_.set_wake_hook([this] { request_wake(); });
  }
  void tick() override {
    ++ticks;
    if (!in_.empty()) {
      in_.pop();
      ++consumed;
    }
  }
  WakeHint next_wake() const override {
    return in_.empty() ? WakeHint::blocked() : WakeHint::active();
  }
  std::uint64_t ticks = 0;
  std::uint64_t consumed = 0;

 private:
  Fifo<int>& in_;
};

}  // namespace

TEST(EventScheduler, FifoPushWakesConsumerAcrossDomains) {
  Simulator sim;
  sim.set_mode(SchedMode::kEventDriven);
  auto& fast = sim.add_clock("fast", 250'000'000);  // 4 ns, producer
  auto& slow = sim.add_clock("slow", 125'000'000);  // 8 ns, consumer
  Fifo<int> fifo(8);
  DelayedProducer prod("prod", fifo, 5, 2);
  FifoConsumer cons("cons", fifo);
  sim.attach(fast, prod);
  sim.attach(slow, cons);
  sim.run_until(200'000);
  // Producer pushes at 24 ns (coincident with a sleeping consumer edge:
  // same-timestamp wake, producer domain fires first) and at 28 ns (the
  // consumer wakes on its next edge, 32 ns). The consumer's only other
  // tick is its initial edge at 8 ns, before it first reports blocked.
  EXPECT_EQ(cons.consumed, 2u);
  EXPECT_EQ(cons.ticks, 3u);
  EXPECT_TRUE(fifo.empty());
  // Both domains slept through the 200 ns window's dense grid.
  EXPECT_GT(sim.stats().counter("sim.skipped_cycles.fast").value(), 0u);
  EXPECT_GT(sim.stats().counter("sim.skipped_cycles.slow").value(), 0u);
}

TEST(EventScheduler, FifoWakeIsEquivalentToDense) {
  for (const SchedMode mode : {SchedMode::kDense, SchedMode::kEventDriven}) {
    Simulator sim;
    sim.set_mode(mode);
    auto& fast = sim.add_clock("fast", 250'000'000);
    auto& slow = sim.add_clock("slow", 125'000'000);
    Fifo<int> fifo(8);
    DelayedProducer prod("prod", fifo, 5, 2);
    FifoConsumer cons("cons", fifo);
    sim.attach(fast, prod);
    sim.attach(slow, cons);
    sim.run_until(200'000);
    EXPECT_EQ(cons.consumed, 2u) << to_string(mode);
    EXPECT_TRUE(fifo.empty()) << to_string(mode);
    EXPECT_EQ(slow.cycles(), 25u) << to_string(mode);
    EXPECT_EQ(fast.cycles(), 50u) << to_string(mode);
  }
}

TEST(EventScheduler, RunCyclesOnQuiescentDomainAdvancesExactly) {
  Simulator sim;
  sim.set_mode(SchedMode::kEventDriven);
  auto& clk = sim.add_clock("clk", 125'000'000);
  BlockedAfterFirstTick b("b");
  sim.attach(clk, b);
  sim.run_cycles(clk, 50);
  EXPECT_EQ(clk.cycles(), 50u);
  EXPECT_EQ(b.ticks, 1u);  // initial edge only; the rest is replayed
  EXPECT_EQ(b.skipped, 49u);
  // A second call starts fully quiescent (no initial active edge at all).
  sim.run_cycles(clk, 30);
  EXPECT_EQ(clk.cycles(), 80u);
  EXPECT_EQ(b.ticks, 1u);
  EXPECT_EQ(b.skipped, 79u);
}

TEST(EventScheduler, RequestWakeEndsBlockedSleep) {
  Simulator sim;
  sim.set_mode(SchedMode::kEventDriven);
  auto& fast = sim.add_clock("fast", 250'000'000);
  auto& slow = sim.add_clock("slow", 125'000'000);
  Fifo<int> fifo(4);
  // Producer pushes once at 40 ns then blocks; nothing else is attached to
  // the fast domain, so after 40 ns both domains are fully quiescent.
  DelayedProducer prod("prod", fifo, 9, 1);
  FifoConsumer cons("cons", fifo);
  sim.attach(fast, prod);
  sim.attach(slow, cons);
  sim.run_until(kPsPerMs);  // 1 ms: ~250k dense groups, almost all skipped
  EXPECT_EQ(cons.consumed, 1u);
  EXPECT_EQ(slow.cycles(), kPsPerMs / 8'000);
  EXPECT_GT(sim.stats().counter("sim.skipped_edge_groups").value(), 200'000u);
}

TEST(Fifo, WakeHookFiresOnAcceptedPushOnly) {
  Fifo<int> f(2);
  int wakes = 0;
  f.set_wake_hook([&] { ++wakes; });
  EXPECT_TRUE(f.try_push(1));
  EXPECT_TRUE(f.try_push(2));
  EXPECT_FALSE(f.try_push(3));  // dropped: occupancy unchanged, no wake
  EXPECT_EQ(wakes, 2);
}

TEST(Fifo, PushPopOrder) {
  Fifo<int> f(4);
  EXPECT_TRUE(f.try_push(1));
  EXPECT_TRUE(f.try_push(2));
  EXPECT_TRUE(f.try_push(3));
  EXPECT_EQ(*f.pop(), 1);
  EXPECT_EQ(*f.pop(), 2);
  EXPECT_EQ(*f.pop(), 3);
  EXPECT_FALSE(f.pop().has_value());
}

TEST(Fifo, OverflowDropsNewAndCounts) {
  Fifo<int> f(2);
  EXPECT_TRUE(f.try_push(1));
  EXPECT_TRUE(f.try_push(2));
  EXPECT_FALSE(f.try_push(3));  // dropped
  EXPECT_EQ(f.overflows(), 1u);
  EXPECT_EQ(f.pushes(), 3u);
  EXPECT_EQ(*f.pop(), 1);  // old data survives, new was lost
}

TEST(Fifo, HighWatermarkTracksDeepestOccupancy) {
  Fifo<int> f(8);
  f.try_push(1);
  f.try_push(2);
  f.try_push(3);
  f.pop();
  f.pop();
  EXPECT_EQ(f.high_watermark(), 3u);
}

TEST(Fifo, StrictPushThrowsWhenFull) {
  Fifo<int> f(1);
  f.push(1);
  EXPECT_THROW(f.push(2), std::runtime_error);
}

TEST(Fifo, ZeroCapacityRejected) {
  EXPECT_THROW(Fifo<int>(0), std::invalid_argument);
}

TEST(Rng, Deterministic) {
  Xoshiro256 a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, SeedsDiffer) {
  Xoshiro256 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next() == b.next() ? 1 : 0;
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInRange) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformBelowRespectsBound) {
  Xoshiro256 rng(9);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.uniform_below(17), 17u);
}

TEST(Rng, GeometricMeanMatchesTheory) {
  Xoshiro256 rng(11);
  const double p = 0.2;
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.geometric(p));
  const double mean = sum / n;  // E = (1-p)/p = 4
  EXPECT_NEAR(mean, 4.0, 0.15);
}

TEST(Rng, NormalMomentsRoughlyStandard) {
  Xoshiro256 rng(13);
  double sum = 0, sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(Zipf, HeavyHeadOrdering) {
  Xoshiro256 rng(5);
  ZipfSampler zipf(100, 1.2);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 50000; ++i) ++counts[zipf.sample(rng)];
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[10], counts[90]);
}

TEST(Zipf, CoversSupport) {
  Xoshiro256 rng(6);
  ZipfSampler zipf(4, 1.0);
  std::vector<int> counts(4, 0);
  for (int i = 0; i < 10000; ++i) ++counts[zipf.sample(rng)];
  for (int c : counts) EXPECT_GT(c, 0);
}

// The cached-log1p sampler must reproduce Xoshiro256::geometric exactly:
// workload traces (and therefore every downstream experiment number) are
// derived from this stream.
TEST(Rng, GeometricSamplerBitIdenticalToAdHocGeometric) {
  for (const double p : {0.08, 0.26, 1.0 / 5'000'000.0}) {
    Xoshiro256 a(77), b(77);
    const GeometricSampler geo(p);
    for (int i = 0; i < 5000; ++i) {
      ASSERT_EQ(geo.sample(a), b.geometric(p)) << "p=" << p << " i=" << i;
    }
  }
}

// The bucket index only narrows the binary-search bounds; every draw must
// land on the same index a full search over the cdf would return.
TEST(Zipf, BucketIndexBitIdenticalToFullBinarySearch) {
  const std::size_t n = 137;
  const double s = 1.15;
  std::vector<double> cdf(n);
  double sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i + 1), s);
    cdf[i] = sum;
  }
  for (auto& c : cdf) c /= sum;

  ZipfSampler zipf(n, s);
  Xoshiro256 a(123), b(123);
  for (int i = 0; i < 20000; ++i) {
    const double u = b.uniform();
    std::size_t lo = 0, hi = n - 1;
    while (lo < hi) {
      const std::size_t mid = (lo + hi) / 2;
      if (cdf[mid] < u) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    ASSERT_EQ(zipf.sample(a), lo) << "i=" << i;
  }
}

TEST(Stats, SamplerSummary) {
  Sampler s;
  s.record(1.0);
  s.record(3.0);
  s.record(2.0);
  EXPECT_EQ(s.count(), 3u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 3.0);
}

TEST(Stats, PercentileNearestRank) {
  Sampler s;
  for (int i = 1; i <= 100; ++i) s.record(i);
  EXPECT_DOUBLE_EQ(s.percentile(50), 50.0);
  EXPECT_DOUBLE_EQ(s.percentile(99), 99.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 100.0);
}

TEST(Stats, PercentileEmptySamplerIsZeroButStillValidatesQ) {
  Sampler s;
  EXPECT_DOUBLE_EQ(s.percentile(0), 0.0);
  EXPECT_DOUBLE_EQ(s.percentile(50), 0.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 0.0);
  // Out-of-range q is a caller bug even with no samples recorded.
  EXPECT_THROW(s.percentile(-0.1), std::invalid_argument);
  EXPECT_THROW(s.percentile(100.1), std::invalid_argument);
}

TEST(Stats, PercentileRejectsNonFiniteQ) {
  // Regression: NaN compares false against both range bounds, so it used to
  // slip past the guard and feed std::ceil + a size_t cast (UB). Any
  // non-finite q must be rejected like an out-of-range one.
  Sampler s;
  s.record(1.0);
  s.record(2.0);
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_THROW(s.percentile(nan), std::invalid_argument);
  EXPECT_THROW(s.percentile(inf), std::invalid_argument);
  EXPECT_THROW(s.percentile(-inf), std::invalid_argument);
  Sampler empty;
  EXPECT_THROW(empty.percentile(nan), std::invalid_argument);
}

TEST(Stats, PercentileSingleSampleIsThatSampleEverywhere) {
  Sampler s;
  s.record(7.5);
  EXPECT_DOUBLE_EQ(s.percentile(0), 7.5);
  EXPECT_DOUBLE_EQ(s.percentile(50), 7.5);
  EXPECT_DOUBLE_EQ(s.percentile(100), 7.5);
}

TEST(Stats, PercentileBoundariesHitMinAndMax) {
  Sampler s;
  s.record(40.0);
  s.record(10.0);
  s.record(30.0);
  s.record(20.0);
  EXPECT_DOUBLE_EQ(s.percentile(0), 10.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 40.0);
  // Nearest-rank on n=4: q=25 -> rank ceil(1)=1 -> first sorted sample;
  // q just above 25 must move to the second.
  EXPECT_DOUBLE_EQ(s.percentile(25), 10.0);
  EXPECT_DOUBLE_EQ(s.percentile(25.01), 20.0);
  EXPECT_DOUBLE_EQ(s.percentile(75), 30.0);
  EXPECT_DOUBLE_EQ(s.percentile(75.01), 40.0);
}

TEST(Stats, SamplerMergeCombinesAndResetClears) {
  Sampler a, b;
  a.record(2.0);
  a.record(4.0);
  b.record(1.0);
  b.record(9.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 4u);
  EXPECT_DOUBLE_EQ(a.sum(), 16.0);
  EXPECT_DOUBLE_EQ(a.min(), 1.0);
  EXPECT_DOUBLE_EQ(a.max(), 9.0);
  EXPECT_DOUBLE_EQ(a.percentile(100), 9.0);

  a.reset();
  EXPECT_EQ(a.count(), 0u);
  EXPECT_DOUBLE_EQ(a.mean(), 0.0);
  EXPECT_DOUBLE_EQ(a.min(), 0.0);
  EXPECT_DOUBLE_EQ(a.max(), 0.0);
  // Recording after a post-merge reset starts a fresh min/max window.
  a.record(5.0);
  EXPECT_DOUBLE_EQ(a.min(), 5.0);
  EXPECT_DOUBLE_EQ(a.max(), 5.0);
}

TEST(Stats, SamplerMergeIntoEmptyAdoptsExtremes) {
  Sampler a, b;
  b.record(-3.0);
  b.record(8.0);
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.min(), -3.0);
  EXPECT_DOUBLE_EQ(a.max(), 8.0);
  // Merging an empty sampler is a no-op (does not drag min toward 0).
  Sampler empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.min(), -3.0);
}

TEST(Stats, CounterMergeAddsAndResetClears) {
  Counter a, b;
  a.add(3);
  b.add(4);
  a.merge(b);
  EXPECT_EQ(a.value(), 7u);
  a.reset();
  EXPECT_EQ(a.value(), 0u);
  a.add();
  EXPECT_EQ(a.value(), 1u);
}

TEST(Stats, RegistryMergeCreatesAndAccumulates) {
  StatsRegistry a, b;
  a.counter("shared").add(1);
  b.counter("shared").add(2);
  b.counter("only_b").add(5);
  b.sampler("lat").record(3.0);
  a.merge(b);
  EXPECT_EQ(a.counter("shared").value(), 3u);
  EXPECT_EQ(a.counter("only_b").value(), 5u);
  EXPECT_EQ(a.sampler("lat").count(), 1u);
}

TEST(Stats, GeometricMean) {
  EXPECT_NEAR(geometric_mean({1.0, 4.0}), 2.0, 1e-12);
  EXPECT_THROW(geometric_mean({1.0, 0.0}), std::invalid_argument);
}

TEST(Stats, RegistryCountersAccumulate) {
  StatsRegistry reg;
  reg.counter("x").add();
  reg.counter("x").add(4);
  EXPECT_EQ(reg.counter("x").value(), 5u);
  reg.reset();
  EXPECT_EQ(reg.counter("x").value(), 0u);
}

}  // namespace
}  // namespace rtad::sim
