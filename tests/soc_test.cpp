// Full-SoC integration tests: train -> deploy -> trace -> detect, plus the
// experiment drivers used by the bench binaries.
#include <gtest/gtest.h>

#include "rtad/core/experiment.hpp"
#include "rtad/core/rtad_soc.hpp"
#include "rtad/core/rule_based.hpp"
#include "rtad/core/sw_reference.hpp"

namespace rtad::core {
namespace {

workloads::SpecProfile fast_profile() {
  auto p = workloads::find_profile("astar");
  p.syscall_interval_instrs = 40'000;  // keep sim time short
  return p;
}

TrainingOptions fast_training() {
  TrainingOptions opt;
  opt.lstm_train_tokens = 2'500;
  opt.lstm_val_tokens = 700;
  opt.elm_train_windows = 250;
  opt.elm_val_windows = 80;
  opt.lstm.epochs = 2;
  return opt;
}

const TrainedModels& shared_models() {
  static const TrainedModels models = train_models(fast_profile(),
                                                   fast_training());
  return models;
}

TEST(Training, ProducesDeployableImages) {
  const auto& m = shared_models();
  EXPECT_TRUE(m.elm->trained());
  EXPECT_TRUE(m.lstm->trained());
  EXPECT_GT(m.lstm_threshold.value(), 0.0f);
  EXPECT_GT(m.elm_threshold.value(), 0.0f);
  EXPECT_EQ(m.lstm_image.input_words, 1u);
  EXPECT_EQ(m.elm_image.input_words, m.features->config().elm_vocab);
  EXPECT_EQ(m.lstm_image.steps.size(), 4u);
  EXPECT_EQ(m.elm_image.steps.size(), 3u);
  // Training must beat the uniform baseline log(64) ~ 4.16 by a clear
  // margin: the monitored-branch stream carries phase structure.
  EXPECT_LT(m.lstm_val_mean_nll, 3.8f);
}

TEST(Soc, BuildsAndRunsWithoutModel) {
  SocConfig cfg;
  cfg.profile = fast_profile();
  cfg.mode = cpu::InstrumentationMode::kBaseline;
  RtadSoc soc(cfg, nullptr, nullptr);
  soc.run_for_instructions(50'000);
  EXPECT_GE(soc.host_cpu().program_instructions(), 50'000u);
  EXPECT_EQ(soc.host_cpu().overhead_instructions(), 0u);
}

TEST(Soc, TraceFlowsToInferences) {
  const auto& m = shared_models();
  SocConfig cfg;
  cfg.profile = fast_profile();
  cfg.model = ModelKind::kLstm;
  cfg.engine = EngineKind::kMlMiaow;
  cfg.seed = 77;
  RtadSoc soc(cfg, &m.lstm_image, m.features.get());
  soc.run_while([&] { return soc.mcm().inferences_completed() < 5; },
                200 * sim::kPsPerMs);
  EXPECT_GE(soc.mcm().inferences_completed(), 5u);
  EXPECT_GT(soc.igm().vectors_out(), 0u);
  EXPECT_GT(soc.ptm().bytes_generated(), 0u);
}

TEST(Soc, DetectsInjectedAttackEndToEnd) {
  const auto& m = shared_models();
  SocConfig cfg;
  cfg.profile = fast_profile();
  cfg.model = ModelKind::kLstm;
  cfg.engine = EngineKind::kMlMiaow;
  cfg.seed = 78;
  attack::AttackConfig atk;
  atk.burst_events = 16;
  cfg.attack = atk;
  RtadSoc soc(cfg, &m.lstm_image, m.features.get());

  // Warm up, then attack.
  soc.run_while([&] { return soc.mcm().inferences_completed() < 10; },
                400 * sim::kPsPerMs);
  const auto irqs_before = soc.host_cpu().irq_count();
  soc.arm_attack(soc.host_cpu().program_instructions() + 1'000);
  soc.run_while([&] { return soc.host_cpu().irq_count() == irqs_before; },
                soc.simulator().now() + 400 * sim::kPsPerMs);
  EXPECT_GT(soc.host_cpu().irq_count(), irqs_before);
  EXPECT_EQ(soc.injector().attacks_launched(), 1u);
}

TEST(Experiment, OverheadOrderingMatchesPaper) {
  // Paper-like syscall cadence (the fast_profile cap would inflate SW_SYS
  // beyond its real ranking).
  auto p = workloads::find_profile("astar");
  p.syscall_interval_instrs = 1'500'000;
  const std::uint64_t n = 3'000'000;
  const double baseline =
      measure_overhead(p, cpu::InstrumentationMode::kBaseline, n);
  const double rtad = measure_overhead(p, cpu::InstrumentationMode::kRtad, n);
  const double sw_sys =
      measure_overhead(p, cpu::InstrumentationMode::kSwSys, n);
  const double sw_func =
      measure_overhead(p, cpu::InstrumentationMode::kSwFunc, n);
  const double sw_all =
      measure_overhead(p, cpu::InstrumentationMode::kSwAll, n);
  EXPECT_EQ(baseline, 0.0);
  EXPECT_LT(rtad, 0.2);
  EXPECT_GT(rtad, 0.0);
  EXPECT_LT(rtad, sw_sys);
  EXPECT_LT(sw_sys, sw_func);
  EXPECT_LT(sw_func, sw_all);
}

TEST(Experiment, SwTransferBreakdownNearPaper) {
  const auto b = sw_transfer_breakdown(32);
  EXPECT_NEAR(b.step1_us, 1.1, 0.1);
  EXPECT_NEAR(b.step2_us, 7.38, 0.4);
  EXPECT_NEAR(b.step3_us, 11.5, 0.8);
  EXPECT_NEAR(b.total_us(), 20.0, 1.2);
}

TEST(Experiment, RtadTransferMuchFasterThanSw) {
  const auto& m = shared_models();
  const auto rtad = measure_rtad_transfer(fast_profile(), m, ModelKind::kLstm,
                                          EngineKind::kMlMiaow, 10);
  const auto sw = sw_transfer_breakdown(32);
  EXPECT_GT(rtad.step1_us, 0.0);
  EXPECT_NEAR(rtad.step2_us, 0.016, 1e-6);  // 2 cycles @ 125 MHz
  EXPECT_LT(rtad.total_us(), sw.total_us() / 3.0);
}

TEST(Experiment, DetectionFasterOnMlMiaow) {
  const auto& m = shared_models();
  DetectionOptions opt;
  opt.attacks = 3;
  const auto fast = measure_detection(fast_profile(), m, ModelKind::kLstm,
                                      EngineKind::kMlMiaow, opt);
  const auto slow = measure_detection(fast_profile(), m, ModelKind::kLstm,
                                      EngineKind::kMiaow, opt);
  EXPECT_GE(fast.detections, 2u);
  EXPECT_GE(slow.detections, 2u);
  EXPECT_LT(fast.mean_latency_us, slow.mean_latency_us);
}

TEST(RuleBased, BlindToReplayedWhitelistedAddresses) {
  RuleBasedDetector rules;
  workloads::TraceGenerator gen(fast_profile(), 1);
  std::vector<std::uint64_t> seen;
  for (int i = 0; i < 100'000; ++i) {
    const auto ev = gen.next().event;
    rules.learn(ev);
    if (ev.taken && cpu::is_waypoint(ev.kind)) seen.push_back(ev.target);
  }
  EXPECT_GT(rules.whitelist_size(), 100u);

  // Replay of whitelisted addresses: invisible by construction.
  sim::Xoshiro256 rng(2);
  for (int i = 0; i < 200; ++i) {
    cpu::BranchEvent replay;
    replay.kind = cpu::BranchKind::kCall;
    replay.taken = true;
    replay.target = seen[rng.uniform_below(seen.size())];
    EXPECT_FALSE(rules.anomalous(replay));
  }
  // Random addresses: trivially caught.
  cpu::BranchEvent random;
  random.kind = cpu::BranchKind::kCall;
  random.taken = true;
  random.target = 0x4000'0000;
  EXPECT_TRUE(rules.anomalous(random));
  // Conditionals are not waypoints: never judged.
  cpu::BranchEvent cond;
  cond.kind = cpu::BranchKind::kConditional;
  cond.target = 0x4000'0000;
  EXPECT_FALSE(rules.anomalous(cond));
}

TEST(Experiment, ElmDetectionWorks) {
  const auto& m = shared_models();
  DetectionOptions opt;
  opt.attacks = 3;
  opt.burst_events = 24;
  const auto r = measure_detection(fast_profile(), m, ModelKind::kElm,
                                   EngineKind::kMlMiaow, opt);
  EXPECT_GE(r.detections, 2u);
  EXPECT_GT(r.mean_latency_us, 0.0);
}

}  // namespace
}  // namespace rtad::core
