// Telemetry subsystem suite (tier 1): page wire format, tiered ring store,
// and the ranked anomaly query engine.
//
// The headline contracts:
//   1. Pages are byte-stable: the serialized form is pinned down to the
//      byte (magic, little-endian fields, FNV-1a digest), round-trips
//      exactly, and parse() rejects truncation, bit flips, bad magic, and
//      trailing bytes before believing a single field.
//   2. Downsampling conserves: tier-1 bins plus the open tail cover every
//      sample exactly once (counts, flags, score sums), and tier-2 bins
//      conserve the tier-1 runs they fold.
//   3. The byte cap evicts in seal order, spills evicted pages to the
//      RTAD_TELEMETRY file verbatim, and never loses summary coverage.
//   4. rank_tenants() is a recency-weighted total order: repeatable,
//      tie-broken by tenant name, and biased toward tenants flagging now.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "rtad/telemetry/page.hpp"
#include "rtad/telemetry/query.hpp"
#include "rtad/telemetry/store.hpp"

namespace rtad::telemetry {
namespace {

/// Independent FNV-1a so the test pins the published constants rather than
/// round-tripping through the implementation under test.
std::uint64_t test_fnv1a(const std::uint8_t* data, std::size_t size) {
  std::uint64_t h = 14695981039346656037ULL;
  for (std::size_t i = 0; i < size; ++i) {
    h ^= data[i];
    h *= 1099511628211ULL;
  }
  return h;
}

Sample make_sample(sim::Picoseconds at, double score, bool flagged = false,
                   std::uint32_t health = 0) {
  Sample s;
  s.at_ps = at;
  s.score = score;
  s.flagged = flagged;
  s.health = health;
  return s;
}

TEST(TelemetryPage, SerializedBytesAreGolden) {
  Page page;
  page.tenant = "t";
  page.tier = 0;
  page.seq = 1;
  page.samples.push_back(make_sample(2, 1.5, true, 3));

  const auto bytes = page.serialize();
  ASSERT_EQ(bytes.size(), 59u);
  EXPECT_EQ(encoded_size(page), bytes.size());

  // Every byte before the digest, by hand: magic, tier, LE total_bytes,
  // LE-length-prefixed tenant, LE seq/count, then the 21-byte sample
  // (u64 at, IEEE-754 score bits, flag byte, u32 health).
  const std::vector<std::uint8_t> golden{
      'R',  'T',  'A',  'D',  'T',  'E',  'L',  '1',   // magic
      0x00,                                            // tier
      0x3B, 0x00, 0x00, 0x00,                          // total_bytes = 59
      0x01, 0x00, 0x00, 0x00, 't',                     // tenant
      0x01, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,  // seq = 1
      0x01, 0x00, 0x00, 0x00,                          // count = 1
      0x02, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,  // at_ps = 2
      0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0xF8, 0x3F,  // score = 1.5
      0x01,                                            // flagged
      0x03, 0x00, 0x00, 0x00,                          // health = 3
  };
  ASSERT_EQ(bytes.size(), golden.size() + 8);
  EXPECT_EQ(std::vector<std::uint8_t>(bytes.begin(), bytes.end() - 8),
            golden);

  // The trailing u64 is FNV-1a over everything before it.
  const std::uint64_t digest = test_fnv1a(bytes.data(), bytes.size() - 8);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(bytes[bytes.size() - 8 + i],
              static_cast<std::uint8_t>(digest >> (8 * i)));
  }
}

TEST(TelemetryPage, RoundTripsAllTiersExactly) {
  Page tier0;
  tier0.tenant = "tenant-42";
  tier0.tier = 0;
  tier0.seq = 7;
  for (int i = 0; i < 5; ++i) {
    tier0.samples.push_back(
        make_sample(100 + i, 0.25 * i, i % 2 == 0, i == 3 ? 1 : 0));
  }
  const auto parsed = Page::parse(tier0.serialize());
  EXPECT_EQ(parsed.tenant, tier0.tenant);
  EXPECT_EQ(parsed.tier, tier0.tier);
  EXPECT_EQ(parsed.seq, tier0.seq);
  ASSERT_EQ(parsed.samples.size(), tier0.samples.size());
  for (std::size_t i = 0; i < parsed.samples.size(); ++i) {
    EXPECT_EQ(parsed.samples[i].at_ps, tier0.samples[i].at_ps);
    EXPECT_EQ(parsed.samples[i].score, tier0.samples[i].score);
    EXPECT_EQ(parsed.samples[i].flagged, tier0.samples[i].flagged);
    EXPECT_EQ(parsed.samples[i].health, tier0.samples[i].health);
  }

  Page tier1;
  tier1.tenant = "tenant-42";
  tier1.tier = 1;
  tier1.seq = 3;
  SummaryBin bin;
  for (const Sample& s : tier0.samples) bin.fold(s);
  tier1.bins.push_back(bin);
  const auto parsed1 = Page::parse(tier1.serialize());
  ASSERT_EQ(parsed1.bins.size(), 1u);
  EXPECT_EQ(parsed1.bins[0].first_ps, bin.first_ps);
  EXPECT_EQ(parsed1.bins[0].last_ps, bin.last_ps);
  EXPECT_EQ(parsed1.bins[0].count, bin.count);
  EXPECT_EQ(parsed1.bins[0].sum_score, bin.sum_score);
  EXPECT_EQ(parsed1.bins[0].min_score, bin.min_score);
  EXPECT_EQ(parsed1.bins[0].max_score, bin.max_score);
  EXPECT_EQ(parsed1.bins[0].flagged, bin.flagged);
  EXPECT_EQ(parsed1.bins[0].health, bin.health);

  // Serialization is a pure function — byte-identical on repeat.
  EXPECT_EQ(tier0.serialize(), tier0.serialize());
}

TEST(TelemetryPage, ParseRejectsEveryCorruption) {
  Page page;
  page.tenant = "tenant";
  page.tier = 0;
  page.seq = 0;
  page.samples.push_back(make_sample(5, 0.5, true));
  const auto bytes = page.serialize();

  // Too short to even hold magic + digest.
  EXPECT_THROW(Page::parse(bytes.data(), 8), TelemetryError);
  // Truncation anywhere invalidates the digest first.
  EXPECT_THROW(Page::parse(bytes.data(), bytes.size() - 1), TelemetryError);
  // A single bit flip anywhere — header, payload, or digest — is caught.
  for (const std::size_t at :
       {std::size_t{0}, std::size_t{9}, bytes.size() / 2, bytes.size() - 1}) {
    auto flipped = bytes;
    flipped[at] ^= 0x10;
    EXPECT_THROW(Page::parse(flipped), TelemetryError) << "offset " << at;
  }
  // Wrong magic with a recomputed (valid) digest still fails.
  {
    auto wrong = bytes;
    wrong[7] = '2';  // "RTADTEL2"
    const std::uint64_t digest = test_fnv1a(wrong.data(), wrong.size() - 8);
    for (int i = 0; i < 8; ++i) {
      wrong[wrong.size() - 8 + i] =
          static_cast<std::uint8_t>(digest >> (8 * i));
    }
    EXPECT_THROW(Page::parse(wrong), TelemetryError);
  }
  // Trailing bytes past the declared length are rejected, not ignored.
  {
    auto padded = bytes;
    padded.push_back(0x00);
    EXPECT_THROW(Page::parse(padded), TelemetryError);
  }
  // The original still parses — the mutations above copied.
  EXPECT_NO_THROW(Page::parse(bytes));
}

TEST(TelemetryStore, TiersConserveSamplesFlagsAndScoreMass) {
  StoreConfig cfg;
  cfg.page_samples = 4;
  cfg.fanout = 2;
  TelemetryStore store(cfg);

  // 27 samples: 6 sealed pages of 4 (-> 6 tier-1 bins -> 3 tier-2 bins)
  // plus an open tail of 3.
  double sum = 0.0;
  std::uint64_t flagged = 0;
  for (int i = 0; i < 27; ++i) {
    const double score = 0.125 * (i % 7);
    const bool flag = i % 3 == 0;
    store.append("tenant", make_sample(10 * (i + 1), score, flag, i % 5 == 0));
    sum += score;
    if (flag) ++flagged;
  }
  EXPECT_EQ(store.samples(), 27u);
  EXPECT_EQ(store.flagged(), flagged);
  EXPECT_EQ(store.pages_sealed(), 6u);

  const auto* stream = store.stream("tenant");
  ASSERT_NE(stream, nullptr);
  EXPECT_EQ(stream->tier1.size(), 6u);
  EXPECT_EQ(stream->tier2.size(), 3u);
  EXPECT_EQ(stream->open.size(), 3u);

  // Tier-1 bins + the open tail cover every sample exactly once.
  SummaryBin tier1_total;
  for (const SummaryBin& b : stream->tier1) tier1_total.fold(b);
  for (const Sample& s : stream->open) tier1_total.fold(s);
  EXPECT_EQ(tier1_total.count, 27u);
  EXPECT_EQ(tier1_total.flagged, flagged);
  EXPECT_DOUBLE_EQ(tier1_total.sum_score, sum);
  EXPECT_EQ(tier1_total.first_ps, 10u);
  EXPECT_EQ(tier1_total.last_ps, 270u);

  // Tier-2 bins conserve the tier-1 runs they fold (all 6 here).
  SummaryBin tier2_total;
  for (const SummaryBin& b : stream->tier2) tier2_total.fold(b);
  EXPECT_EQ(tier2_total.count, 24u);  // 6 sealed pages of 4
  SummaryBin sealed_total;
  for (const SummaryBin& b : stream->tier1) sealed_total.fold(b);
  EXPECT_EQ(tier2_total.flagged, sealed_total.flagged);
  EXPECT_DOUBLE_EQ(tier2_total.sum_score, sealed_total.sum_score);
  EXPECT_EQ(tier2_total.min_score, sealed_total.min_score);
  EXPECT_EQ(tier2_total.max_score, sealed_total.max_score);
}

TEST(TelemetryStore, RejectsOutOfOrderStreamClock) {
  TelemetryStore store;
  store.append("tenant", make_sample(100, 0.0));
  store.append("tenant", make_sample(100, 0.0));  // equal instants are fine
  EXPECT_THROW(store.append("tenant", make_sample(99, 0.0)), TelemetryError);
  // Other tenants keep their own clocks.
  EXPECT_NO_THROW(store.append("other", make_sample(1, 0.0)));
}

TEST(TelemetryStore, ByteCapEvictsInSealOrderAndSpillRoundTrips) {
  const std::string spill = testing::TempDir() + "rtad_telemetry_spill.bin";

  StoreConfig cfg;
  cfg.page_samples = 4;
  cfg.cap_bytes = 256;  // a handful of sealed pages
  cfg.spill_path = spill;
  std::uint64_t evicted = 0;
  std::uint64_t sealed = 0;
  {
    TelemetryStore store(cfg);
    for (int i = 0; i < 40; ++i) {
      store.append("alpha", make_sample(10 * (i + 1), 0.1 * i, i % 4 == 0));
    }
    EXPECT_LE(store.resident_bytes(), cfg.cap_bytes);
    EXPECT_GT(store.pages_evicted(), 0u);
    EXPECT_EQ(store.pages_spilled(), store.pages_evicted());
    evicted = store.pages_evicted();
    sealed = store.pages_sealed();

    // Eviction never loses summary coverage: the ranked view still sees
    // every sample.
    const auto ranked = rank_tenants(store);
    ASSERT_EQ(ranked.size(), 1u);
    EXPECT_EQ(ranked[0].samples, store.samples());

    // Raw extraction honestly drops evicted payloads (oldest first).
    const auto raw = series(store, "alpha", 0, 0, ~sim::Picoseconds{0});
    EXPECT_EQ(raw.points.size(),
              store.samples() - evicted * cfg.page_samples);
    EXPECT_EQ(raw.points.front().at_ps, 10 * (evicted * cfg.page_samples + 1));
  }  // closes the spill stream

  // The spill file is a plain concatenation of the evicted pages, verbatim
  // and verifiable: the oldest `evicted` seqs, in seal order.
  std::ifstream in(spill, std::ios::binary);
  ASSERT_TRUE(in.good());
  std::vector<std::uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                                  std::istreambuf_iterator<char>());
  const auto pages = parse_spill(bytes);
  ASSERT_EQ(pages.size(), evicted);
  ASSERT_LE(evicted, sealed);
  for (std::size_t i = 0; i < pages.size(); ++i) {
    EXPECT_EQ(pages[i].tenant, "alpha");
    EXPECT_EQ(pages[i].tier, 0);
    EXPECT_EQ(pages[i].seq, i);
    ASSERT_EQ(pages[i].samples.size(), cfg.page_samples);
    EXPECT_EQ(pages[i].samples.front().at_ps, 10 * (i * cfg.page_samples + 1));
  }

  // A corrupted spill is rejected, not silently truncated.
  bytes.push_back(0xFF);
  EXPECT_THROW(parse_spill(bytes), TelemetryError);
}

TEST(TelemetryQuery, SeriesClipsWindowsAndValidatesTier) {
  StoreConfig cfg;
  cfg.page_samples = 3;
  TelemetryStore store(cfg);
  for (int i = 1; i <= 8; ++i) {
    store.append("tenant", make_sample(100 * i, i, i == 5));
  }

  const auto mid = series(store, "tenant", 0, 250, 650);
  ASSERT_EQ(mid.points.size(), 4u);  // 300, 400, 500, 600
  EXPECT_EQ(mid.points.front().at_ps, 300u);
  EXPECT_EQ(mid.points.back().at_ps, 600u);
  EXPECT_TRUE(mid.points[2].flagged);

  // Tier 1: two sealed bins plus the synthetic open-tail bin.
  const auto bins = series(store, "tenant", 1, 0, ~sim::Picoseconds{0});
  ASSERT_EQ(bins.bins.size(), 3u);
  EXPECT_EQ(bins.bins[0].count + bins.bins[1].count + bins.bins[2].count, 8u);
  // Bin-granularity clipping: a window touching only the tail keeps it.
  const auto tail = series(store, "tenant", 1, 750, 900);
  ASSERT_EQ(tail.bins.size(), 1u);
  EXPECT_EQ(tail.bins[0].first_ps, 700u);

  EXPECT_TRUE(series(store, "nobody", 0, 0, 1000).points.empty());
  EXPECT_THROW(series(store, "tenant", 3, 0, 1000), TelemetryError);
}

TEST(TelemetryQuery, RankPrefersRecentFlagsAndBreaksTiesByName) {
  StoreConfig cfg;
  cfg.page_samples = 4;
  TelemetryStore store(cfg);

  // "warm" flags early, "hot" flags late; same sample count, same number
  // of flags, same scores — only recency differs.
  for (int i = 0; i < 16; ++i) {
    store.append("warm", make_sample(100 * (i + 1), 0.5, i < 4));
    store.append("hot", make_sample(100 * (i + 1), 0.5, i >= 12));
    store.append("quiet-b", make_sample(100 * (i + 1), 0.1, false));
    store.append("quiet-a", make_sample(100 * (i + 1), 0.1, false));
  }

  const auto ranked = rank_tenants(store);
  ASSERT_EQ(ranked.size(), 4u);
  EXPECT_EQ(ranked[0].tenant, "hot");
  EXPECT_EQ(ranked[1].tenant, "warm");
  EXPECT_GT(ranked[0].severity, ranked[1].severity);
  // Unweighted rates are identical — only the decay separates them.
  EXPECT_DOUBLE_EQ(ranked[0].anomaly_rate, ranked[1].anomaly_rate);
  // The all-zero tail ties at severity 0 and falls back to name order.
  EXPECT_EQ(ranked[2].tenant, "quiet-a");
  EXPECT_EQ(ranked[3].tenant, "quiet-b");
  EXPECT_EQ(ranked[2].severity, 0.0);

  // The ranking is a pure function of the store: repeat queries agree
  // field-for-field.
  const auto again = rank_tenants(store);
  ASSERT_EQ(again.size(), ranked.size());
  for (std::size_t i = 0; i < ranked.size(); ++i) {
    EXPECT_EQ(again[i].tenant, ranked[i].tenant);
    EXPECT_EQ(again[i].severity, ranked[i].severity);
    EXPECT_EQ(again[i].samples, ranked[i].samples);
  }

  // top_k truncates after the total order is fixed.
  RankQuery top2;
  top2.top_k = 2;
  const auto truncated = rank_tenants(store, top2);
  ASSERT_EQ(truncated.size(), 2u);
  EXPECT_EQ(truncated[0].tenant, "hot");
  EXPECT_EQ(truncated[1].tenant, "warm");

  // Windowed rank sees only the window: early flags only -> warm leads.
  RankQuery early;
  early.t1 = 450;
  const auto head = rank_tenants(store, early);
  ASSERT_FALSE(head.empty());
  EXPECT_EQ(head[0].tenant, "warm");
}

TEST(TelemetryQuery, HalfLifeKnobReplacesTheSpanQuarterDefault) {
  constexpr const char* kVar = "RTAD_TELEMETRY_HALF_LIFE_US";
  ASSERT_EQ(unsetenv(kVar), 0);
  // Unset: no knob half-life — rank_tenants falls through to span/4.
  EXPECT_EQ(default_half_life_ps(), 0u);

  StoreConfig cfg;
  cfg.page_samples = 4;
  TelemetryStore store(cfg);
  for (int i = 0; i < 16; ++i) {
    store.append("warm", make_sample(100 * (i + 1), 0.5, i < 4));
    store.append("hot", make_sample(100 * (i + 1), 0.5, i >= 12));
  }

  // The knob is read per query and pins the documented unit (simulated
  // microseconds): a query with the knob set equals one passing the same
  // half-life explicitly, field for field.
  ASSERT_EQ(setenv(kVar, "250", 1), 0);
  EXPECT_EQ(default_half_life_ps(), 250u * 1'000'000ULL);
  const auto via_knob = rank_tenants(store);
  ASSERT_EQ(unsetenv(kVar), 0);
  RankQuery explicit_hl;
  explicit_hl.half_life_ps = 250u * 1'000'000ULL;
  const auto via_query = rank_tenants(store, explicit_hl);
  ASSERT_EQ(via_knob.size(), via_query.size());
  for (std::size_t i = 0; i < via_knob.size(); ++i) {
    EXPECT_EQ(via_knob[i].tenant, via_query[i].tenant);
    EXPECT_EQ(via_knob[i].severity, via_query[i].severity);
    EXPECT_EQ(via_knob[i].samples, via_query[i].samples);
  }

  // An explicit half-life on the query wins over the knob.
  ASSERT_EQ(setenv(kVar, "999999", 1), 0);
  const auto overridden = rank_tenants(store, explicit_hl);
  ASSERT_EQ(overridden.size(), via_query.size());
  for (std::size_t i = 0; i < overridden.size(); ++i) {
    EXPECT_EQ(overridden[i].severity, via_query[i].severity);
  }

  // Malformed values throw the strict env grammar's named error rather
  // than silently decaying to span/4.
  ASSERT_EQ(setenv(kVar, "soon", 1), 0);
  EXPECT_THROW(rank_tenants(store), std::invalid_argument);
  ASSERT_EQ(unsetenv(kVar), 0);
}

}  // namespace
}  // namespace rtad::telemetry
