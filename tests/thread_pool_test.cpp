// Work-stealing thread-pool unit tests: result ordering, exception
// propagation, drain-on-shutdown, nested submission, env sizing, and a
// ThreadSanitizer-friendly stress case.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <stdexcept>
#include <thread>
#include <vector>

#include "rtad/sim/thread_pool.hpp"

namespace rtad::sim {
namespace {

TEST(ThreadPool, ResultsComeBackInSubmissionOrder) {
  ThreadPool pool(4);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.submit([i] {
      if (i % 7 == 0) {
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      }
      return i * i;
    }));
  }
  // Completion order is arbitrary; collecting futures in submission order
  // is what makes parallel experiment output deterministic.
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(futures[static_cast<std::size_t>(i)].get(), i * i);
  }
}

TEST(ThreadPool, ExceptionPropagatesOutOfWorker) {
  ThreadPool pool(2);
  auto boom = pool.submit(
      []() -> int { throw std::runtime_error("worker exploded"); });
  EXPECT_THROW(
      {
        try {
          boom.get();
        } catch (const std::runtime_error& e) {
          EXPECT_STREQ(e.what(), "worker exploded");
          throw;
        }
      },
      std::runtime_error);
  // The worker survives the exception and keeps serving tasks.
  EXPECT_EQ(pool.submit([] { return 41 + 1; }).get(), 42);
}

TEST(ThreadPool, ShutdownDrainsQueuedTasks) {
  std::atomic<int> executed{0};
  std::vector<std::future<void>> futures;
  {
    ThreadPool pool(2);
    for (int i = 0; i < 32; ++i) {
      futures.push_back(pool.submit([&executed] {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        executed.fetch_add(1, std::memory_order_relaxed);
      }));
    }
    // Destructor runs with most tasks still queued behind 2 workers.
  }
  EXPECT_EQ(executed.load(), 32);
  for (auto& f : futures) {
    EXPECT_EQ(f.wait_for(std::chrono::seconds(0)),
              std::future_status::ready);
  }
}

TEST(ThreadPool, NestedSubmitFromWorkerCompletes) {
  std::atomic<int> children{0};
  {
    ThreadPool pool(1);  // single worker: children queue behind the parent
    pool.submit([&] {
        for (int i = 0; i < 8; ++i) {
          pool.submit(
              [&children] { children.fetch_add(1, std::memory_order_relaxed); });
        }
      }).get();
  }  // drain guarantees the children ran even though nobody kept futures
  EXPECT_EQ(children.load(), 8);
}

TEST(ThreadPool, JobsFromEnvParsesAndRejectsMalformedValues) {
  ASSERT_EQ(setenv("RTAD_TEST_JOBS", "3", 1), 0);
  EXPECT_EQ(ThreadPool::jobs_from_env("RTAD_TEST_JOBS"), 3u);
  // Malformed counts used to silently decay to hardware_concurrency; they
  // are a loud error now (core::env consolidation).
  ASSERT_EQ(setenv("RTAD_TEST_JOBS", "0", 1), 0);
  EXPECT_THROW(ThreadPool::jobs_from_env("RTAD_TEST_JOBS"),
               std::invalid_argument);
  ASSERT_EQ(setenv("RTAD_TEST_JOBS", "not-a-number", 1), 0);
  EXPECT_THROW(ThreadPool::jobs_from_env("RTAD_TEST_JOBS"),
               std::invalid_argument);
  ASSERT_EQ(setenv("RTAD_TEST_JOBS", "3extra", 1), 0);
  EXPECT_THROW(ThreadPool::jobs_from_env("RTAD_TEST_JOBS"),
               std::invalid_argument);
  // Unset and empty both mean "use the hardware default".
  ASSERT_EQ(setenv("RTAD_TEST_JOBS", "", 1), 0);
  EXPECT_GE(ThreadPool::jobs_from_env("RTAD_TEST_JOBS"), 1u);
  ASSERT_EQ(unsetenv("RTAD_TEST_JOBS"), 0);
  EXPECT_GE(ThreadPool::jobs_from_env("RTAD_TEST_JOBS"), 1u);
}

// Many tiny tasks from many submitters, results written to disjoint slots:
// under TSan this exercises queue locking, stealing, and the wake path with
// zero expected reports.
TEST(ThreadPool, StressManySmallTasksNoRaces) {
  constexpr std::size_t kTasks = 4000;
  std::vector<std::uint64_t> slots(kTasks, 0);
  {
    ThreadPool pool(8);
    std::vector<std::future<void>> futures;
    futures.reserve(kTasks);
    for (std::size_t i = 0; i < kTasks; ++i) {
      futures.push_back(
          pool.submit([&slots, i] { slots[i] = i + 1; }));
    }
    for (auto& f : futures) f.get();
  }
  std::uint64_t sum = 0;
  for (const auto v : slots) sum += v;
  EXPECT_EQ(sum, kTasks * (kTasks + 1) / 2);
}

}  // namespace
}  // namespace rtad::sim
