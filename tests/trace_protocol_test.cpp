// Trace protocol layer tests: factories, E-Trace packet grammar, seeded
// encoder->decoder round trips for both protocols, and E-Trace corruption
// recovery mirroring the PFT cases in fault_test.cpp.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "rtad/coresight/tpiu.hpp"
#include "rtad/coresight/trace_source.hpp"
#include "rtad/igm/trace_analyzer.hpp"
#include "rtad/sim/fifo.hpp"
#include "rtad/sim/rng.hpp"
#include "rtad/trace/decoder.hpp"
#include "rtad/trace/encoder.hpp"
#include "rtad/trace/etrace.hpp"
#include "rtad/trace/pft.hpp"
#include "rtad/trace/protocol.hpp"

namespace rtad::trace {
namespace {

TraceByte tb(std::uint8_t value) { return TraceByte{value, 1000, 0, false}; }

/// Feed a byte vector and collect every decoded branch.
std::vector<DecodedBranch> feed_all(TraceDecoder& dec,
                                    const std::vector<std::uint8_t>& bytes) {
  std::vector<DecodedBranch> out;
  for (const auto b : bytes) {
    if (auto d = dec.feed(tb(b))) out.push_back(*d);
  }
  return out;
}

// ------------------------------------------------------------- factories

TEST(TraceProtocolFactory, EncoderDecoderPairsMatchProtocol) {
  for (auto proto : {TraceProtocol::kPft, TraceProtocol::kEtrace}) {
    auto enc = make_encoder(proto);
    auto dec = make_decoder(proto);
    ASSERT_NE(enc, nullptr);
    ASSERT_NE(dec, nullptr);
    EXPECT_EQ(enc->protocol(), proto);
    EXPECT_EQ(dec->protocol(), proto);
    EXPECT_STREQ(to_string(proto), traits(proto).name);
  }
}

TEST(TraceProtocolFactory, TraitsDescribeBothGrammars) {
  for (auto proto : {TraceProtocol::kPft, TraceProtocol::kEtrace}) {
    const auto& t = traits(proto);
    EXPECT_EQ(t.address_bits, 32);
    EXPECT_EQ(t.address_alignment, 2);  // addr[0] never traced
    EXPECT_GT(t.max_packet_bytes, 0);
    EXPECT_GT(t.sync_preamble_bytes, 0);
  }
  // The design point of the E-Trace grammar: much deeper outcome batching.
  EXPECT_GT(traits(TraceProtocol::kEtrace).max_outcomes_per_packet,
            traits(TraceProtocol::kPft).max_outcomes_per_packet);
}

// --------------------------------------------------- E-Trace packet shape

TEST(EtracePacketShape, SyncPreambleIsRunTerminatorAddressContext) {
  EtraceEncoder enc;
  std::vector<std::uint8_t> bytes;
  enc.emit_sync(0x12345678, 7, bytes);
  const std::vector<std::uint8_t> expected = {
      0x03, 0x03, 0x03, 0xF3, 0x78, 0x56, 0x34, 0x12, 0x07};
  EXPECT_EQ(bytes, expected);
  EXPECT_EQ(static_cast<int>(bytes.size()),
            traits(TraceProtocol::kEtrace).sync_preamble_bytes);
}

TEST(EtracePacketShape, BranchMapBatchesOutcomesLsbFirst) {
  EtraceEncoder enc;
  std::vector<std::uint8_t> bytes;
  cpu::BranchEvent ev;
  ev.kind = cpu::BranchKind::kConditional;
  for (bool taken : {true, false, true}) {
    ev.taken = taken;
    enc.encode(ev, bytes);
  }
  EXPECT_TRUE(bytes.empty());  // still batching
  enc.flush(bytes);
  // header: format 0b01, count=3 in bits[6:2]; payload: 0b101 LSB-first.
  const std::vector<std::uint8_t> expected = {0x0D, 0x05};
  EXPECT_EQ(bytes, expected);
}

TEST(EtracePacketShape, FullMapFlushesAtThirtyOneOutcomes) {
  EtraceEncoder enc;
  std::vector<std::uint8_t> bytes;
  cpu::BranchEvent ev;
  ev.kind = cpu::BranchKind::kConditional;
  ev.taken = true;
  for (int i = 0; i < kEtraceMaxMapOutcomes; ++i) enc.encode(ev, bytes);
  // 31 outcomes force an automatic flush: header + 4 bitmap bytes.
  ASSERT_EQ(bytes.size(), 5u);
  EXPECT_EQ(bytes[0], static_cast<std::uint8_t>(
                          kEtraceFormatBranchMap | (31 << 2)));
  EXPECT_EQ(bytes[1], 0xFF);
  EXPECT_EQ(bytes[2], 0xFF);
  EXPECT_EQ(bytes[3], 0xFF);
  EXPECT_EQ(bytes[4], 0x7F);  // bit 31 is padding and must be zero
}

TEST(EtracePacketShape, NearbyTargetTakesOneDeltaByte) {
  EtraceEncoder enc;
  std::vector<std::uint8_t> bytes;
  enc.emit_sync(0x1000, 1, bytes);
  bytes.clear();
  cpu::BranchEvent ev;
  ev.kind = cpu::BranchKind::kCall;
  ev.target = 0x1040;
  enc.encode(ev, bytes);
  // delta halfwords = 0x20, zigzag = 0x40 -> 1 payload byte.
  const std::vector<std::uint8_t> expected = {0x02, 0x40};
  EXPECT_EQ(bytes, expected);
  EXPECT_EQ(enc.address_bytes_needed(0x1042), 1);
  EXPECT_EQ(enc.address_bytes_needed(0x90000000), 4);
}

TEST(EtracePacketShape, SyscallSetsExceptionInfoInHeader) {
  EtraceEncoder enc;
  std::vector<std::uint8_t> bytes;
  enc.emit_sync(0x1000, 1, bytes);
  bytes.clear();
  cpu::BranchEvent ev;
  ev.kind = cpu::BranchKind::kSyscall;
  ev.target = 0x1040;
  enc.encode(ev, bytes);
  ASSERT_FALSE(bytes.empty());
  EXPECT_EQ(bytes[0] & kEtraceFormatMask, kEtraceFormatAddress);
  EXPECT_EQ((bytes[0] >> 2) & 0x03,
            static_cast<int>(EtraceExceptionInfo::kSyscall));
}

TEST(EtracePacketShape, ZigzagIsItsOwnInverse) {
  sim::Xoshiro256 rng(7);
  for (int i = 0; i < 1000; ++i) {
    const auto v = static_cast<std::int32_t>(rng.next());
    EXPECT_EQ(etrace_unzigzag(etrace_zigzag(v)), v);
  }
  EXPECT_EQ(etrace_zigzag(0), 0u);
  EXPECT_EQ(etrace_zigzag(-1), 1u);
  EXPECT_EQ(etrace_zigzag(1), 2u);
}

// ----------------------------------------------------- round-trip property

/// Seeded stream of branch events with 32-bit halfword-aligned targets and
/// a realistic kind mix (mostly conditionals, some calls/returns/jumps, a
/// few syscalls).
std::vector<cpu::BranchEvent> random_events(std::uint64_t seed,
                                            std::size_t count) {
  sim::Xoshiro256 rng(seed);
  std::vector<cpu::BranchEvent> events;
  events.reserve(count);
  std::uint64_t pc = 0x10000;
  for (std::size_t i = 0; i < count; ++i) {
    cpu::BranchEvent ev;
    const auto roll = rng.uniform_below(100);
    if (roll < 70) {
      ev.kind = cpu::BranchKind::kConditional;
      ev.taken = rng.chance(0.6);
    } else if (roll < 80) {
      ev.kind = cpu::BranchKind::kCall;
    } else if (roll < 90) {
      ev.kind = cpu::BranchKind::kReturn;
    } else if (roll < 96) {
      ev.kind = cpu::BranchKind::kIndirectJump;
    } else {
      ev.kind = cpu::BranchKind::kSyscall;
    }
    if (rng.chance(0.8)) {
      // Local transfer: short signed hop from the previous target.
      const auto hop = static_cast<std::int64_t>(rng.uniform_below(0x4000)) -
                       0x2000;
      pc = static_cast<std::uint64_t>(
               static_cast<std::int64_t>(pc) + 2 * hop) &
           0xFFFFFFFEULL;
    } else {
      pc = (rng.next() & 0xFFFFFFFEULL);
    }
    ev.target = pc;
    ev.source = pc ^ 0x40;
    events.push_back(ev);
  }
  return events;
}

struct Expected {
  std::uint64_t address;
  bool is_syscall;
};

/// Encode `events` (with a periodic sync) and decode the byte stream back;
/// every waypoint must reconstruct exactly and every conditional must land
/// in the outcome-batch census.
void round_trip(TraceProtocol proto, std::uint64_t seed) {
  SCOPED_TRACE(std::string("proto=") + to_string(proto) +
               " seed=" + std::to_string(seed));
  auto enc = make_encoder(proto);
  auto dec = make_decoder(proto);

  const auto events = random_events(seed, 2'000);
  std::vector<std::uint8_t> bytes;
  std::vector<Expected> expected;
  std::uint64_t conditionals = 0;

  enc->emit_sync(0, 1, bytes);
  std::size_t since_sync = 0;
  for (const auto& ev : events) {
    enc->encode(ev, bytes);
    if (cpu::is_waypoint(ev.kind)) {
      expected.push_back(Expected{ev.target & 0xFFFFFFFEULL,
                                  ev.kind == cpu::BranchKind::kSyscall});
    } else {
      ++conditionals;
    }
    // Interleave syncs mid-stream; the decoder must hold lock across them.
    if (++since_sync == 257) {
      enc->emit_sync(expected.empty() ? 0 : expected.back().address, 1,
                     bytes);
      since_sync = 0;
    }
  }
  enc->flush(bytes);

  const auto decoded = feed_all(*dec, bytes);
  ASSERT_EQ(decoded.size(), expected.size());
  for (std::size_t i = 0; i < decoded.size(); ++i) {
    EXPECT_EQ(decoded[i].address, expected[i].address) << "waypoint " << i;
    EXPECT_EQ(decoded[i].is_syscall, expected[i].is_syscall)
        << "waypoint " << i;
    EXPECT_EQ(decoded[i].origin_ps, 1000u);  // sideband pass-through
  }
  EXPECT_EQ(dec->atoms_decoded(), conditionals);
  EXPECT_EQ(dec->branches_decoded(), expected.size());
  EXPECT_EQ(dec->bad_packets(), 0u);
  EXPECT_EQ(dec->resyncs(), 0u);
  EXPECT_EQ(dec->bytes_consumed(), bytes.size());
  EXPECT_TRUE(dec->synced());
}

TEST(ProtocolRoundTrip, PftReconstructsEveryWaypoint) {
  for (std::uint64_t seed : {1, 17, 4242}) {
    round_trip(TraceProtocol::kPft, seed);
  }
}

TEST(ProtocolRoundTrip, EtraceReconstructsEveryWaypoint) {
  for (std::uint64_t seed : {1, 17, 4242}) {
    round_trip(TraceProtocol::kEtrace, seed);
  }
}

TEST(ProtocolRoundTrip, BothProtocolsCarryTheSameBranchSequence) {
  const auto events = random_events(99, 3'000);
  std::vector<std::vector<std::uint64_t>> sequences;
  std::vector<std::uint64_t> atom_counts;
  for (auto proto : {TraceProtocol::kPft, TraceProtocol::kEtrace}) {
    auto enc = make_encoder(proto);
    auto dec = make_decoder(proto);
    std::vector<std::uint8_t> bytes;
    enc->emit_sync(0, 1, bytes);
    for (const auto& ev : events) enc->encode(ev, bytes);
    enc->flush(bytes);
    std::vector<std::uint64_t> seq;
    for (const auto& d : feed_all(*dec, bytes)) seq.push_back(d.address);
    sequences.push_back(std::move(seq));
    atom_counts.push_back(dec->atoms_decoded());
  }
  EXPECT_EQ(sequences[0], sequences[1]);
  EXPECT_EQ(atom_counts[0], atom_counts[1]);
}

// -------------------------------- E-Trace corruption recovery (cf. PFT
// cases in fault_test.cpp)

TEST(EtraceDecoderRecovery, MalformedPacketCountsAndResyncs) {
  EtraceStreamDecoder dec;
  EtraceEncoder enc;
  std::vector<std::uint8_t> bytes;
  enc.emit_sync(0, 1, bytes);
  EXPECT_TRUE(feed_all(dec, bytes).empty());
  EXPECT_TRUE(dec.synced());

  // Header bit 7 is reserved-zero for branch-map packets; a set bit is
  // provably corruption.
  feed_all(dec, {0x81});
  EXPECT_GE(dec.bad_packets(), 1u);
  EXPECT_GE(dec.resyncs(), 1u);
  EXPECT_FALSE(dec.synced());
}

TEST(EtraceDecoderRecovery, ReservedEncodingsAreBadPackets) {
  EtraceEncoder enc;
  // Each entry is a provably-corrupt byte sequence when it follows a clean
  // sync preamble.
  const std::vector<std::vector<std::uint8_t>> corruptions = {
      {0x00},        // format 0b00 reserved
      {0xF3},        // stray sync terminator with no run
      {0x01},        // branch map with count 0
      {0x82},        // address header with reserved bit 7
      {0x0E},        // address header with reserved exception info (0b11)
      {0x09, 0xFC},  // 2-outcome map with nonzero padding bits
  };
  for (const auto& bad : corruptions) {
    EtraceStreamDecoder dec;
    std::vector<std::uint8_t> bytes;
    enc.reset();
    enc.emit_sync(0, 1, bytes);
    feed_all(dec, bytes);
    ASSERT_TRUE(dec.synced());
    feed_all(dec, bad);
    EXPECT_EQ(dec.bad_packets(), 1u) << "corruption 0x" << std::hex
                                     << int{bad[0]};
    EXPECT_FALSE(dec.synced());
  }
}

TEST(EtraceDecoderRecovery, ResyncRoundTripRecoversDecoding) {
  EtraceStreamDecoder dec;
  EtraceEncoder enc;
  std::vector<std::uint8_t> bytes;
  enc.emit_sync(0, 1, bytes);

  cpu::BranchEvent ev;
  ev.kind = cpu::BranchKind::kCall;
  ev.taken = true;
  ev.target = 0x5000;
  enc.encode(ev, bytes);
  EXPECT_EQ(feed_all(dec, bytes).size(), 1u);

  // Corrupt the stream, then resync via a fresh preamble.
  feed_all(dec, {0x81});
  ASSERT_FALSE(dec.synced());
  const auto bad_before = dec.bad_packets();

  enc.reset();
  std::vector<std::uint8_t> recovery;
  enc.emit_sync(0, 1, recovery);
  ev.target = 0x6000;
  enc.encode(ev, recovery);
  EXPECT_EQ(feed_all(dec, recovery).size(), 1u);
  EXPECT_TRUE(dec.synced());
  EXPECT_EQ(dec.bad_packets(), bad_before);  // clean stream adds none
  EXPECT_EQ(dec.last_address(), 0x6000u);
}

TEST(EtraceDecoderRecovery, GarbageStreamNeverThrows) {
  EtraceStreamDecoder dec;
  sim::Xoshiro256 rng(99);
  for (int i = 0; i < 50'000; ++i) {
    EXPECT_NO_THROW(
        dec.feed(tb(static_cast<std::uint8_t>(rng.uniform_below(256)))));
  }
}

// ------------------------------------------------------- pipeline wiring

TEST(ProtocolPipeline, TraceSourceSpeaksConfiguredProtocol) {
  for (auto proto : {TraceProtocol::kPft, TraceProtocol::kEtrace}) {
    coresight::TraceSourceConfig cfg;
    cfg.protocol = proto;
    cfg.flush_threshold = 1;
    coresight::TraceSource src(cfg);
    EXPECT_EQ(src.protocol(), proto);

    cpu::BranchEvent ev;
    ev.kind = cpu::BranchKind::kCall;
    ev.target = 0x8000;
    src.submit(ev);
    for (int i = 0; i < 64; ++i) src.tick();

    auto dec = make_decoder(proto);
    std::size_t decoded = 0;
    while (auto b = src.tx_fifo().pop()) {
      if (dec->feed(*b)) ++decoded;
    }
    EXPECT_EQ(decoded, 1u) << to_string(proto);
    EXPECT_EQ(dec->last_address(), 0x8000u);
  }
}

TEST(ProtocolPipeline, TraceAnalyzerDecodesEtraceWords) {
  sim::Fifo<coresight::TpiuWord> port(64);
  igm::TraceAnalyzer ta(port, 4, 16, igm::OverflowPolicy::kStall,
                        TraceProtocol::kEtrace);
  EXPECT_EQ(ta.protocol(), TraceProtocol::kEtrace);

  EtraceEncoder enc;
  std::vector<std::uint8_t> bytes;
  enc.emit_sync(0, 1, bytes);
  cpu::BranchEvent ev;
  ev.kind = cpu::BranchKind::kCall;
  for (std::uint64_t t : {0x4000, 0x4100, 0x9000}) {
    ev.target = t;
    enc.encode(ev, bytes);
  }

  coresight::TpiuWord w;
  for (const auto b : bytes) {
    w.bytes[w.count] = tb(b);
    if (++w.count == 4) {
      port.try_push(w);
      w = coresight::TpiuWord{};
    }
  }
  if (w.count > 0) port.try_push(w);

  std::vector<std::uint64_t> addrs;
  for (int i = 0; i < 64; ++i) {
    ta.tick();
    while (auto d = ta.out().pop()) addrs.push_back(d->address);
  }
  const std::vector<std::uint64_t> expected = {0x4000, 0x4100, 0x9000};
  EXPECT_EQ(addrs, expected);
  EXPECT_EQ(ta.decoder().bad_packets(), 0u);
}

}  // namespace
}  // namespace rtad::trace
