// Trimming-flow tests: coverage DB, both trimmers, the area model and the
// trim verifier — i.e. the full Fig. 4 loop plus Tables I/II invariants.
#include <gtest/gtest.h>

#include "rtad/gpgpu/assembler.hpp"
#include "rtad/trim/area_model.hpp"
#include "rtad/trim/coverage_db.hpp"
#include "rtad/trim/miaow2_trimmer.hpp"
#include "rtad/trim/trimmer.hpp"
#include "rtad/trim/verifier.hpp"

namespace rtad::trim {
namespace {

using gpgpu::assemble;
using gpgpu::Gpu;
using gpgpu::GpuConfig;
using gpgpu::LaunchConfig;
using gpgpu::RtlInventory;

CoverageDb coverage_of(const char* asm_text) {
  const auto p = assemble(asm_text);
  GpuConfig cfg;
  cfg.collect_coverage = true;
  Gpu gpu(cfg);
  LaunchConfig launch;
  launch.program = &p;
  gpu.launch(launch);
  gpu.run_to_completion();
  return CoverageDb::from_gpu(gpu);
}

TEST(CoverageDb, EmptyByDefault) {
  CoverageDb db;
  EXPECT_EQ(db.covered_count(), 0u);
  EXPECT_EQ(db.total_units(), RtlInventory::instance().num_units());
}

TEST(CoverageDb, MergeAccumulates) {
  auto a = coverage_of("  v_mov_b32 v2, 1\n  s_endpgm\n");
  auto b = coverage_of("  v_sin_f32 v2, v3\n  s_endpgm\n");
  const auto a_count = a.covered_count();
  a.merge(b);
  EXPECT_GT(a.covered_count(), a_count);
  const auto& inv = RtlInventory::instance();
  EXPECT_TRUE(a.covered(inv.opcode_unit(gpgpu::Opcode::V_SIN_F32)));
  EXPECT_TRUE(a.covered(inv.opcode_unit(gpgpu::Opcode::V_MOV_B32)));
}

TEST(CoverageDb, UncoveredNamesListTrimCandidates) {
  const auto db = coverage_of("  s_endpgm\n");
  const auto names = db.uncovered_names();
  EXPECT_GT(names.size(), 50u);
  bool found_f64 = false;
  for (const auto& n : names) found_f64 |= n == "pipe_valu_f64";
  EXPECT_TRUE(found_f64);
}

TEST(Trimmer, FullTrimKeepsOnlyCovered) {
  const auto db = coverage_of("  v_mov_b32 v2, 1\n  s_endpgm\n");
  const auto result = trim_full(db);
  EXPECT_EQ(result.retained, db.covered_units());
  EXPECT_GT(result.units_removed, 0u);
  EXPECT_LT(result.area.lut_ff_sum(), result.full_area.lut_ff_sum());
  EXPECT_GT(result.reduction(), 0.5);
}

TEST(Trimmer, Miaow2KeepsEverythingOutsideAluDecoder) {
  const auto db = coverage_of("  v_mov_b32 v2, 1\n  s_endpgm\n");
  const auto full = trim_full(db);
  const auto m2 = trim_alu_decoder_only(db);
  EXPECT_LT(m2.units_removed, full.units_removed);
  EXPECT_GT(m2.area.lut_ff_sum(), full.area.lut_ff_sum());
  const auto& inv = RtlInventory::instance();
  for (const auto& unit : inv.units()) {
    if (!unit.alu_or_decoder) {
      EXPECT_TRUE(m2.retained[unit.id]) << unit.name;
    }
  }
}

TEST(AreaModel, Table1RowsMatchPaper) {
  MlpuStructure s;
  s.retained = RtlInventory::instance().ml_retained();
  const auto rows = build_table1(s);
  ASSERT_EQ(rows.size(), 8u);

  auto find = [&](const std::string& name) -> const ModuleArea& {
    for (const auto& r : rows) {
      if (r.submodule.rfind(name, 0) == 0) return r;
    }
    throw std::runtime_error("row not found: " + name);
  };
  EXPECT_EQ(find("Trace Analyzer").luts, 11'962u);
  EXPECT_EQ(find("Trace Analyzer").ffs, 350u);
  EXPECT_EQ(find("Trace Analyzer").gates, 12'375u);
  EXPECT_EQ(find("P2S").luts, 686u);
  EXPECT_EQ(find("P2S").ffs, 1'074u);
  EXPECT_EQ(find("P2S").gates, 14'363u);
  EXPECT_EQ(find("Input Vector Generator").luts, 890u);
  EXPECT_EQ(find("Input Vector Generator").ffs, 1'067u);
  EXPECT_EQ(find("Input Vector Generator").gates, 10'430u);
  EXPECT_EQ(find("Internal FIFO").luts, 13u);
  EXPECT_EQ(find("Internal FIFO").ffs, 33u);
  EXPECT_EQ(find("Internal FIFO").brams, 10u);
  EXPECT_EQ(find("ML-MIAOW Driver").gates, 5'971u);
  EXPECT_EQ(find("Control FSM").gates, 16'977u);
  EXPECT_EQ(find("Interrupt Manager").gates, 927u);
  EXPECT_EQ(find("ML-MIAOW (5 CUs)").luts, 183'715u);
  EXPECT_EQ(find("ML-MIAOW (5 CUs)").ffs, 76'375u);
  EXPECT_EQ(find("ML-MIAOW (5 CUs)").brams, 140u);

  const auto total = total_of(rows);
  EXPECT_EQ(total.luts, 199'406u);
  EXPECT_EQ(total.ffs, 80'953u);
  EXPECT_EQ(total.brams, 150u);
  // Paper total gate count 1,927,294 — our calibrated model within ~1%.
  EXPECT_NEAR(static_cast<double>(total.gates), 1'927'294.0, 20'000.0);
}

TEST(AreaModel, ScalesWithStructure) {
  EXPECT_LT(igm_trace_analyzer_area(1).luts, igm_trace_analyzer_area(4).luts);
  EXPECT_LT(igm_p2s_area(2).ffs, igm_p2s_area(8).ffs);
  EXPECT_LT(mcm_internal_fifo_area(4).brams, mcm_internal_fifo_area(16).brams);
}

TEST(AreaModel, FpgaUtilizationMatchesPaperFractions) {
  // §IV-A: MLPU occupies 91.2% of 218,600 LUTs, 18.5% of 437,200 FFs and
  // 27.5% of 545 BRAMs on the XC7Z045.
  MlpuStructure s;
  s.retained = RtlInventory::instance().ml_retained();
  const auto total = total_of(build_table1(s));
  EXPECT_NEAR(static_cast<double>(total.luts) / 218'600.0, 0.912, 0.002);
  EXPECT_NEAR(static_cast<double>(total.ffs) / 437'200.0, 0.185, 0.002);
  EXPECT_NEAR(static_cast<double>(total.brams) / 545.0, 0.275, 0.002);
}

TEST(Verifier, PassesWhenTrimMatchesKernel) {
  // Trim to the coverage of the very kernel we then verify.
  const char* kSrc = R"(
  s_mov_b32 s4, 4096
  v_lshlrev_b32 v2, 2, v0
  v_mov_b32 v3, 5
  global_store_dword v3, v2, s4
  s_endpgm
)";
  const auto db = coverage_of(kSrc);
  const auto result = trim_full(db);

  // Build a single-step "model" around the kernel: result block at 4096.
  ml::ModelImage image;
  image.name = "unit";
  image.input_addr = 0x40;
  image.input_words = 1;
  image.result_addr = 4096;
  ml::KernelStep step;
  step.program = assemble(kSrc);
  step.kernarg_addr = 0x100;
  image.steps.push_back(std::move(step));

  const auto verdict = verify_trim(image, {{1u}, {2u}}, result.retained, 5);
  EXPECT_TRUE(verdict.passed) << verdict.detail;
  EXPECT_EQ(verdict.inferences_compared, 2u);
}

TEST(Verifier, FailsWhenKernelNeedsTrimmedLogic) {
  const auto db = coverage_of("  s_endpgm\n");  // nearly-empty coverage
  const auto result = trim_full(db);

  ml::ModelImage image;
  image.name = "unit";
  image.input_addr = 0x40;
  image.result_addr = 4096;
  ml::KernelStep step;
  step.program = assemble("  v_mov_b32 v2, 1\n  s_endpgm\n");
  image.steps.push_back(std::move(step));

  const auto verdict = verify_trim(image, {{1u}}, result.retained, 5);
  EXPECT_FALSE(verdict.passed);
  EXPECT_NE(verdict.detail.find("v_mov_b32"), std::string::npos);
}

TEST(Energy, TrimmingCutsLeakageNotDynamic) {
  const auto& inv = RtlInventory::instance();
  std::vector<std::uint64_t> activity(inv.num_units(), 0);
  activity[inv.opcode_unit(gpgpu::Opcode::V_MAC_F32)] = 1000;
  activity[inv.pipe_unit(gpgpu::Pipe::kValuF32)] = 1000;

  const auto full = engine_energy(activity, {}, 10'000, 1);
  const auto trimmed = engine_energy(activity, inv.ml_retained(), 10'000, 1);
  EXPECT_DOUBLE_EQ(full.dynamic_nj, trimmed.dynamic_nj);
  EXPECT_GT(full.static_nj, 4.0 * trimmed.static_nj);  // ~82% trimmed
  EXPECT_GT(full.total_nj(), trimmed.total_nj());
}

TEST(Energy, ScalesWithActivityCyclesAndCus) {
  const auto& inv = RtlInventory::instance();
  std::vector<std::uint64_t> a1(inv.num_units(), 1);
  std::vector<std::uint64_t> a2(inv.num_units(), 2);
  const auto e1 = engine_energy(a1, {}, 1'000, 1);
  const auto e2 = engine_energy(a2, {}, 2'000, 5);
  EXPECT_NEAR(e2.dynamic_nj, 2.0 * e1.dynamic_nj, 1e-9);
  EXPECT_NEAR(e2.static_nj, 10.0 * e1.static_nj, 1e-6);
  std::vector<std::uint64_t> bad(3, 0);
  EXPECT_THROW(engine_energy(bad, {}, 1, 1), std::invalid_argument);
}

TEST(TableII, ReductionsMatchPaperShape) {
  // Using the committed ML-kernel surface as merged coverage: ML-MIAOW
  // removes 82%, MIAOW2.0 removes 42% (Table II exactly, by construction;
  // this test guards the budget arithmetic).
  const auto& inv = RtlInventory::instance();
  std::vector<std::uint64_t> hits(inv.num_units(), 0);
  for (const auto& unit : inv.units()) {
    if (unit.used_by_ml) hits[unit.id] = 1;
  }
  CoverageDb db(hits);
  const auto full = trim_full(db);
  const auto m2 = trim_alu_decoder_only(db);
  EXPECT_EQ(full.area.luts, 36'743u);
  EXPECT_EQ(full.area.ffs, 15'275u);
  EXPECT_EQ(m2.area.luts, 97'222u);
  EXPECT_EQ(m2.area.ffs, 70'499u);
  EXPECT_NEAR(full.reduction(), 0.82, 0.005);
  EXPECT_NEAR(m2.reduction(), 0.42, 0.005);
}

}  // namespace
}  // namespace rtad::trim
