// Workload model tests: catalog sanity, trace statistics, determinism.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "rtad/workloads/spec_model.hpp"
#include "rtad/workloads/trace_generator.hpp"

namespace rtad::workloads {
namespace {

TEST(Catalog, HasAllTwelveBenchmarks) {
  const auto& suite = spec_cint2006();
  EXPECT_EQ(suite.size(), 12u);
  const std::set<std::string> expected = {
      "400.perlbench", "401.bzip2",  "403.gcc",        "429.mcf",
      "445.gobmk",     "456.hmmer",  "458.sjeng",      "462.libquantum",
      "464.h264ref",   "471.omnetpp", "473.astar",     "483.xalancbmk"};
  std::set<std::string> got;
  for (const auto& p : suite) got.insert(p.name);
  EXPECT_EQ(got, expected);
}

TEST(Catalog, LookupByShortAndLongName) {
  EXPECT_EQ(find_profile("omnetpp").name, "471.omnetpp");
  EXPECT_EQ(find_profile("471.omnetpp").name, "471.omnetpp");
  EXPECT_THROW(find_profile("doom3"), std::invalid_argument);
}

TEST(Catalog, ProfilesAreWellFormed) {
  for (const auto& p : spec_cint2006()) {
    EXPECT_GT(p.branch_fraction, 0.0) << p.name;
    EXPECT_LT(p.branch_fraction, 0.5) << p.name;
    EXPECT_LT(p.call_fraction + p.return_fraction + p.indirect_fraction, 1.0)
        << p.name;
    EXPECT_GT(p.branch_sites, 0u) << p.name;
    EXPECT_GT(p.syscall_interval_instrs, 0u) << p.name;
    EXPECT_LE(p.phase_window, p.branch_sites) << p.name;
  }
}

TEST(Catalog, OmnetppIsBranchHeaviest) {
  // §IV-C singles out 471.omnetpp as the benchmark of "heavy branch
  // pressure"; the calibration must preserve that.
  const auto& omnetpp = find_profile("omnetpp");
  for (const auto& p : spec_cint2006()) {
    EXPECT_LE(p.branch_fraction, omnetpp.branch_fraction) << p.name;
  }
}

TEST(TraceGenerator, Deterministic) {
  const auto& p = find_profile("gcc");
  TraceGenerator a(p, 7), b(p, 7);
  for (int i = 0; i < 2000; ++i) {
    const auto sa = a.next();
    const auto sb = b.next();
    EXPECT_EQ(sa.instr_gap, sb.instr_gap);
    EXPECT_EQ(sa.event.target, sb.event.target);
    EXPECT_EQ(static_cast<int>(sa.event.kind), static_cast<int>(sb.event.kind));
  }
}

TEST(TraceGenerator, SeedsProduceDifferentTraces) {
  const auto& p = find_profile("gcc");
  TraceGenerator a(p, 1), b(p, 2);
  int same = 0;
  for (int i = 0; i < 500; ++i) {
    same += a.next().event.target == b.next().event.target ? 1 : 0;
  }
  EXPECT_LT(same, 100);
}

TEST(TraceGenerator, BranchDensityMatchesProfile) {
  const auto& p = find_profile("bzip2");
  TraceGenerator gen(p, 3);
  const std::size_t n = 50'000;
  for (std::size_t i = 0; i < n; ++i) gen.next();
  const double measured = static_cast<double>(gen.branches_emitted()) /
                          static_cast<double>(gen.instructions_emitted());
  EXPECT_NEAR(measured, p.branch_fraction, 0.01);
}

TEST(TraceGenerator, KindMixMatchesProfile) {
  const auto& p = find_profile("perlbench");
  TraceGenerator gen(p, 9);
  std::size_t calls = 0, rets = 0, conds = 0, total = 0;
  for (int i = 0; i < 100'000; ++i) {
    const auto s = gen.next();
    ++total;
    switch (s.event.kind) {
      case cpu::BranchKind::kCall: ++calls; break;
      case cpu::BranchKind::kReturn: ++rets; break;
      case cpu::BranchKind::kConditional: ++conds; break;
      default: break;
    }
  }
  EXPECT_NEAR(static_cast<double>(calls) / total, p.call_fraction, 0.02);
  // Returns can be suppressed when the shadow stack is empty, so <=.
  EXPECT_LE(static_cast<double>(rets) / total, p.return_fraction + 0.02);
  EXPECT_GT(static_cast<double>(conds) / total, 0.5);
}

TEST(TraceGenerator, ReturnsMatchCallTargetsViaShadowStack) {
  const auto& p = find_profile("astar");
  TraceGenerator gen(p, 5);
  std::vector<std::uint64_t> stack;
  for (int i = 0; i < 50'000; ++i) {
    const auto s = gen.next();
    if (s.event.kind == cpu::BranchKind::kCall) {
      stack.push_back(s.event.source + 4);
      if (stack.size() > 64) stack.erase(stack.begin());
    } else if (s.event.kind == cpu::BranchKind::kReturn) {
      ASSERT_FALSE(stack.empty());
      EXPECT_EQ(s.event.target, stack.back());
      stack.pop_back();
    }
  }
}

TEST(TraceGenerator, SyscallCadenceMatchesProfile) {
  auto p = find_profile("gcc");
  p.syscall_interval_instrs = 20'000;  // denser for test speed
  TraceGenerator gen(p, 11);
  std::size_t syscalls = 0;
  for (int i = 0; i < 800'000; ++i) {
    if (gen.next().event.kind == cpu::BranchKind::kSyscall) ++syscalls;
  }
  const double interval = static_cast<double>(gen.instructions_emitted()) /
                          static_cast<double>(syscalls);
  // ~180 samples: the sample mean of an exponential has ~7.5% relative SE.
  EXPECT_NEAR(interval, 20'000.0, 3'500.0);
}

TEST(TraceGenerator, SyscallTargetsInKernelRange) {
  auto p = find_profile("bzip2");
  p.syscall_interval_instrs = 5'000;
  TraceGenerator gen(p, 13);
  for (int i = 0; i < 50'000; ++i) {
    const auto s = gen.next();
    if (s.event.kind != cpu::BranchKind::kSyscall) continue;
    EXPECT_GE(s.event.target, kSyscallBase);
    EXPECT_LT(s.event.target,
              kSyscallBase + kSyscallStride * p.syscall_kinds);
  }
}

TEST(TraceGenerator, AddressesAreHalfwordAligned) {
  const auto& p = find_profile("sjeng");
  TraceGenerator gen(p, 17);
  for (int i = 0; i < 10'000; ++i) {
    const auto s = gen.next();
    EXPECT_EQ(s.event.target & 1, 0u);
    EXPECT_EQ(s.event.source & 1, 0u);
  }
}

TEST(TraceGenerator, FunctionIndexInvertsEntries) {
  const auto& p = find_profile("mcf");
  TraceGenerator gen(p, 19);
  const auto& funcs = gen.function_entries();
  for (std::size_t i = 0; i < funcs.size(); i += 7) {
    EXPECT_EQ(gen.function_index(funcs[i]), static_cast<std::ptrdiff_t>(i));
  }
  EXPECT_EQ(gen.function_index(0x12), -1);
  EXPECT_EQ(gen.function_index(funcs[0] + 4), -1);
}

TEST(TraceGenerator, PhaseBehaviourShiftsWorkingSet) {
  const auto& p = find_profile("omnetpp");
  TraceGenerator gen(p, 23);
  // Collect source addresses in two windows far apart; phase shifts should
  // change the active site population substantially.
  std::set<std::uint64_t> early, late;
  for (int i = 0; i < 5'000; ++i) early.insert(gen.next().event.source);
  for (int i = 0; i < 200'000; ++i) gen.next();
  for (int i = 0; i < 5'000; ++i) late.insert(gen.next().event.source);
  std::size_t common = 0;
  for (const auto a : early) common += late.count(a);
  EXPECT_LT(static_cast<double>(common) / static_cast<double>(early.size()),
            0.9);
}

TEST(TraceGenerator, TakeBatches) {
  const auto& p = find_profile("hmmer");
  TraceGenerator gen(p, 29);
  const auto steps = gen.take(100);
  EXPECT_EQ(steps.size(), 100u);
  EXPECT_EQ(gen.branches_emitted(), 100u);
}

TEST(DriftSchedule, PhaseIsAPureFunctionOfNominalTime) {
  DriftSchedule d;
  EXPECT_FALSE(d.active());  // catalog default: no drift
  d.period_us = 2'000;
  d.phases = 4;
  EXPECT_TRUE(d.active());
  const std::uint64_t period_ps = d.period_us * 1'000'000ULL;
  EXPECT_EQ(d.phase_at_ps(0), 0u);
  EXPECT_EQ(d.phase_at_ps(period_ps - 1), 0u);
  EXPECT_EQ(d.phase_at_ps(period_ps), 1u);
  EXPECT_EQ(d.phase_at_ps(3 * period_ps), 3u);
  EXPECT_EQ(d.phase_at_ps(4 * period_ps), 0u);  // wraps
  EXPECT_EQ(d.phase_at_ps(9 * period_ps + 5), 1u);

  // period without phases, and phases without a period, are both off.
  d.phases = 1;
  EXPECT_FALSE(d.active());
  EXPECT_EQ(d.phase_at_ps(7 * period_ps), 0u);
  d.phases = 4;
  d.period_us = 0;
  EXPECT_FALSE(d.active());
}

TEST(TraceGenerator, InactiveDriftLeavesTheStreamBitIdentical) {
  const auto& plain = find_profile("gcc");
  auto decorated = plain;
  decorated.drift.period_us = 2'000;  // phases == 1: schedule inactive
  decorated.drift.syscall_rotate = 7;
  decorated.drift.taken_swing = 0.2;

  TraceGenerator a(plain, 7);
  TraceGenerator b(decorated, 7);
  for (int i = 0; i < 3'000; ++i) {
    const auto sa = a.next();
    const auto sb = b.next();
    ASSERT_EQ(sa.instr_gap, sb.instr_gap) << i;
    ASSERT_EQ(sa.event.source, sb.event.source) << i;
    ASSERT_EQ(sa.event.target, sb.event.target) << i;
    ASSERT_EQ(static_cast<int>(sa.event.kind),
              static_cast<int>(sb.event.kind))
        << i;
  }
  EXPECT_EQ(b.drift_phase(), 0u);
}

TEST(TraceGenerator, DriftCursorFreezesOrAdvancesThePhase) {
  auto p = find_profile("gcc");
  p.drift.period_us = 100;  // 25k instructions per phase at 4000 ps/instr
  p.drift.phases = 4;
  p.drift.syscall_rotate = 3;
  const std::uint64_t period_ps = p.drift.period_us * 1'000'000ULL;

  // A frozen cursor pins the phase at its snapshot instant forever — the
  // offline dataset builder's view of one training window.
  TraceGenerator frozen(p, 11, DriftCursor{2 * period_ps + 5, true});
  EXPECT_EQ(frozen.drift_phase(), 2u);
  frozen.take(20'000);
  EXPECT_EQ(frozen.drift_phase(), 2u);

  // The online cursor walks the schedule with nominal program time and
  // wraps: by 5 phases of instructions it has cycled back past phase 0.
  TraceGenerator online(p, 11, DriftCursor{0, false});
  EXPECT_EQ(online.drift_phase(), 0u);
  std::uint32_t seen_max = 0;
  bool wrapped = false;
  while (online.instructions_emitted() * kNominalPsPerInstr <
         5 * period_ps) {
    const std::uint32_t phase = online.drift_phase();
    if (phase > seen_max) seen_max = phase;
    if (seen_max == p.drift.phases - 1 && phase == 0) wrapped = true;
    online.next();
  }
  EXPECT_EQ(seen_max, p.drift.phases - 1);
  EXPECT_TRUE(wrapped);

  // And the base offset seats the start mid-schedule, like a serve tenant
  // admitted at fleet time T.
  TraceGenerator offset(p, 11, DriftCursor{3 * period_ps, false});
  EXPECT_EQ(offset.drift_phase(), 3u);
}

}  // namespace
}  // namespace rtad::workloads
