#!/usr/bin/env bash
# Perf smoke, two gates on the fig8 detection workload:
#
#   1. Scheduler: the event-driven kernel must produce byte-identical
#      stdout to the dense reference and actually be faster.
#   2. Backend: the fast (decode-once) execution backend must produce
#      byte-identical stdout and rtad.metrics.v1 JSON, and simulate the
#      cell's trained kernels >= PERF_SMOKE_MIN_BACKEND_SPEEDUP x faster
#      than the cycle-level oracle (the backend_probe measures kernel
#      simulation in isolation — inside the matrix, launch wall-clock also
#      covers the concurrently simulated CPU/fabric domains, which no GPU
#      backend can remove; the end-to-end matrix walls are recorded too).
#   3. Trace protocol: the E-Trace frontend must flag the identical
#      attack/detection/false-positive counts as the PFT reference on the
#      same cell (encodings differ; verdicts must not).
#
# Emits BENCH_fig8.json with wall-clock numbers for all four runs, the
# event kernel's skip counters, the backend probe, and the measured
# per-protocol encoder bandwidth (bytes per decoded branch).
#
# The speedups are computed on fig8's matrix_wall_ms (the detection matrix
# itself): with RTAD_FIG8_FAST_TRAIN the bench pre-warms the model cache
# before the matrix, so model training — identical host-side work under
# every kernel/backend — stays out of the timed region. Total process
# walls are still recorded in the JSON for context.
#
# Usage: tools/perf_smoke.sh <build-dir> [output-json]
# Knobs (defaults chosen for CI): RTAD_FIG8_BENCHMARKS, RTAD_FIG8_MODELS,
# RTAD_FIG8_ENGINES, RTAD_FIG8_ATTACKS, PERF_SMOKE_MIN_SPEEDUP (default
# 2.0), PERF_SMOKE_MIN_BACKEND_SPEEDUP (default 10.0),
# PERF_SMOKE_BACKEND_PROBE (default 300 probe inferences).
#
# The default cell selection (hmmer, LSTM/MIAOW) is the workload the event
# kernel is built for: long 1-CU inferences during which the CPU and fabric
# domains are provably idle. The other cells are excluded from the timing
# by default — their wall-clock is dominated by genuine GPU instruction
# simulation (5 CUs, or ELM's near-continuous short inferences) that no
# scheduler can skip, which only dilutes the kernel-vs-kernel comparison.
# Full-matrix dense-vs-event identity is covered by the determinism test
# suite; this script asserts identity on its own cell too.
set -euo pipefail

BUILD_DIR="${1:?usage: perf_smoke.sh <build-dir> [output-json]}"
OUT_JSON="${2:-BENCH_fig8.json}"
BENCH="${BUILD_DIR}/bench/fig8_detection"
MIN_SPEEDUP="${PERF_SMOKE_MIN_SPEEDUP:-2.0}"
MIN_BACKEND_SPEEDUP="${PERF_SMOKE_MIN_BACKEND_SPEEDUP:-10.0}"
BACKEND_PROBE="${PERF_SMOKE_BACKEND_PROBE:-300}"

export RTAD_FIG8_BENCHMARKS="${RTAD_FIG8_BENCHMARKS:-hmmer}"
export RTAD_FIG8_MODELS="${RTAD_FIG8_MODELS:-lstm}"
export RTAD_FIG8_ENGINES="${RTAD_FIG8_ENGINES:-miaow}"
export RTAD_FIG8_ATTACKS="${RTAD_FIG8_ATTACKS:-8}"
export RTAD_FIG8_FAST_TRAIN="${RTAD_FIG8_FAST_TRAIN:-1}"
export RTAD_JOBS=1

workdir="$(mktemp -d)"
trap 'rm -rf "${workdir}"' EXIT

# run_mode <sched> <backend> <tag> [probe]: one fig8 run; echoes wall ms.
run_mode() {
  local sched="$1" backend="$2" tag="$3" probe="${4:-0}"
  local start end
  start=$(date +%s%N)
  RTAD_SCHED="${sched}" RTAD_BACKEND="${backend}" \
    RTAD_FIG8_BACKEND_PROBE="${probe}" \
    RTAD_METRICS="${workdir}/metrics-${tag}.json" \
    "${BENCH}" > "${workdir}/${tag}.txt" 2> "${workdir}/${tag}.err"
  end=$(date +%s%N)
  echo $(( (end - start) / 1000000 ))
}

matrix_ms() {
  sed -n 's/^fig8: matrix_wall_ms=\([0-9]*\)$/\1/p' "${workdir}/$1.err"
}

echo "perf_smoke: benchmarks=${RTAD_FIG8_BENCHMARKS} models=${RTAD_FIG8_MODELS} engines=${RTAD_FIG8_ENGINES} attacks=${RTAD_FIG8_ATTACKS} fast_train=${RTAD_FIG8_FAST_TRAIN}" >&2
dense_ms=$(run_mode dense cycle dense)
event_ms=$(run_mode event cycle event)
fast_ms=$(run_mode event fast fast "${BACKEND_PROBE}")
export RTAD_TRACE_PROTO=etrace
etrace_ms=$(run_mode event fast etrace)
unset RTAD_TRACE_PROTO

# Byte-identity: neither the event kernel nor the fast backend may change
# a single byte of stdout or of the rtad.metrics.v1 export.
for tag in event fast; do
  if ! cmp -s "${workdir}/dense.txt" "${workdir}/${tag}.txt"; then
    echo "perf_smoke: FAIL — stdout differs between dense/cycle and ${tag}" >&2
    diff "${workdir}/dense.txt" "${workdir}/${tag}.txt" >&2 || true
    exit 1
  fi
  if ! cmp -s "${workdir}/metrics-dense.json" "${workdir}/metrics-${tag}.json"; then
    echo "perf_smoke: FAIL — metrics JSON differs between dense/cycle and ${tag}" >&2
    diff "${workdir}/metrics-dense.json" "${workdir}/metrics-${tag}.json" >&2 || true
    exit 1
  fi
done

# Cross-protocol verdict identity: the detection section of the metrics
# export (attacks, detections, false positives) must match line-for-line
# between the PFT and E-Trace runs — same formatting, so a plain textual
# compare of the extracted lines is exact.
for key in '"attacks"' '"detections"' '"false_positives"'; do
  pft_line=$(grep -m1 "${key}" "${workdir}/metrics-fast.json")
  etrace_line=$(grep -m1 "${key}" "${workdir}/metrics-etrace.json")
  if [ "${pft_line}" != "${etrace_line}" ]; then
    echo "perf_smoke: FAIL — ${key} differs between pft and etrace" >&2
    echo "  pft:    ${pft_line}" >&2
    echo "  etrace: ${etrace_line}" >&2
    exit 1
  fi
done

# Per-protocol encoder bandwidth, from the fig8 proto stderr lines.
pft_bpb=$(sed -n 's/^fig8: proto=pft .*bytes_per_branch=\([0-9.]*\).*/\1/p' "${workdir}/fast.err")
etrace_bpb=$(sed -n 's/^fig8: proto=etrace .*bytes_per_branch=\([0-9.]*\).*/\1/p' "${workdir}/etrace.err")
if [ -z "${pft_bpb}" ] || [ -z "${etrace_bpb}" ]; then
  echo "perf_smoke: FAIL — missing fig8 proto bandwidth lines" >&2
  cat "${workdir}/etrace.err" >&2
  exit 1
fi

dense_matrix_ms=$(matrix_ms dense)
event_matrix_ms=$(matrix_ms event)
fast_matrix_ms=$(matrix_ms fast)
etrace_matrix_ms=$(matrix_ms etrace)
if [ -z "${dense_matrix_ms}" ] || [ -z "${event_matrix_ms}" ] ||
   [ -z "${fast_matrix_ms}" ] || [ -z "${etrace_matrix_ms}" ]; then
  echo "perf_smoke: FAIL — bench did not report matrix_wall_ms" >&2
  cat "${workdir}/event.err" >&2
  exit 1
fi

sched_line=$(grep -E '^fig8: scheduler=event' "${workdir}/event.err" || true)
skipped_groups=$(echo "${sched_line}" | sed -n 's/.*skipped_edge_groups=\([0-9]*\).*/\1/p')
skipped_cycles=$(echo "${sched_line}" | sed -n 's/.*skipped_cycles=\([0-9]*\).*/\1/p')
if [ -z "${skipped_groups}" ] || [ "${skipped_groups}" -eq 0 ]; then
  echo "perf_smoke: FAIL — event kernel reported no skipped edge groups" >&2
  cat "${workdir}/event.err" >&2
  exit 1
fi

# Backend probe: kernel-simulation speedup, and proof the fast path ran
# (fast_launches=0 would mean every launch silently fell back to cycle).
probe_line=$(grep -E '^fig8: backend_probe' "${workdir}/fast.err" || true)
backend_speedup=$(echo "${probe_line}" | sed -n 's/.*kernel_speedup=\([0-9.]*\).*/\1/p')
probe_cycle_us=$(echo "${probe_line}" | sed -n 's/.*cycle_wall_us=\([0-9]*\).*/\1/p')
probe_fast_us=$(echo "${probe_line}" | sed -n 's/.*fast_wall_us=\([0-9]*\).*/\1/p')
fast_launches=$(sed -n 's/^fig8: backend=fast .*fast_launches=\([0-9]*\)$/\1/p' "${workdir}/fast.err")
if [ -z "${backend_speedup}" ] || [ -z "${fast_launches}" ]; then
  echo "perf_smoke: FAIL — fast run did not report backend_probe/backend lines" >&2
  cat "${workdir}/fast.err" >&2
  exit 1
fi
if [ "${fast_launches}" -eq 0 ]; then
  echo "perf_smoke: FAIL — fast backend fell back to cycle on every launch" >&2
  exit 1
fi

speedup=$(awk -v d="${dense_matrix_ms}" -v e="${event_matrix_ms}" \
  'BEGIN { printf "%.2f", (e > 0 ? d / e : 0) }')
fast_matrix_speedup=$(awk -v d="${dense_matrix_ms}" -v f="${fast_matrix_ms}" \
  'BEGIN { printf "%.2f", (f > 0 ? d / f : 0) }')

cat > "${OUT_JSON}" <<JSON
{
  "benchmark": "fig8_detection",
  "benchmarks": "${RTAD_FIG8_BENCHMARKS}",
  "models": "${RTAD_FIG8_MODELS}",
  "engines": "${RTAD_FIG8_ENGINES}",
  "attacks_per_cell": ${RTAD_FIG8_ATTACKS},
  "fast_train": ${RTAD_FIG8_FAST_TRAIN},
  "backend": "fast",
  "dense_wall_ms": ${dense_ms},
  "event_wall_ms": ${event_ms},
  "fast_wall_ms": ${fast_ms},
  "dense_matrix_wall_ms": ${dense_matrix_ms},
  "event_matrix_wall_ms": ${event_matrix_ms},
  "fast_matrix_wall_ms": ${fast_matrix_ms},
  "speedup": ${speedup},
  "fast_matrix_speedup": ${fast_matrix_speedup},
  "backend_kernel_speedup": ${backend_speedup},
  "backend_probe_inferences": ${BACKEND_PROBE},
  "backend_probe_cycle_wall_us": ${probe_cycle_us},
  "backend_probe_fast_wall_us": ${probe_fast_us},
  "fast_launches": ${fast_launches},
  "etrace_wall_ms": ${etrace_ms},
  "etrace_matrix_wall_ms": ${etrace_matrix_ms},
  "trace_pft_bytes_per_branch": ${pft_bpb},
  "trace_etrace_bytes_per_branch": ${etrace_bpb},
  "etrace_flags_identical": true,
  "stdout_identical": true,
  "metrics_identical": true,
  "event_skipped_edge_groups": ${skipped_groups},
  "event_skipped_cycles": ${skipped_cycles}
}
JSON

echo "perf_smoke: matrix dense=${dense_matrix_ms}ms event=${event_matrix_ms}ms fast=${fast_matrix_ms}ms sched_speedup=${speedup}x backend_kernel_speedup=${backend_speedup}x (min ${MIN_SPEEDUP}x/${MIN_BACKEND_SPEEDUP}x)" >&2
cat "${OUT_JSON}"

awk -v s="${speedup}" -v m="${MIN_SPEEDUP}" 'BEGIN { exit !(s >= m) }' || {
  echo "perf_smoke: FAIL — scheduler speedup ${speedup}x below minimum ${MIN_SPEEDUP}x" >&2
  exit 1
}
awk -v s="${backend_speedup}" -v m="${MIN_BACKEND_SPEEDUP}" 'BEGIN { exit !(s >= m) }' || {
  echo "perf_smoke: FAIL — backend kernel speedup ${backend_speedup}x below minimum ${MIN_BACKEND_SPEEDUP}x" >&2
  exit 1
}
