#!/usr/bin/env bash
# Perf smoke: the event-driven scheduler must (a) produce byte-identical
# stdout to the dense reference kernel and (b) actually be faster on the
# fig8 detection workload. Emits BENCH_fig8.json with both wall-clock
# numbers and the event kernel's skip counters.
#
# The speedup is computed on fig8's matrix_wall_ms (the detection matrix
# itself): with RTAD_FIG8_FAST_TRAIN the bench pre-warms the model cache
# before the matrix, so model training — identical host-side work under
# either kernel — stays out of the timed region. Total process walls are
# still recorded in the JSON for context.
#
# Usage: tools/perf_smoke.sh <build-dir> [output-json]
# Knobs (defaults chosen for CI): RTAD_FIG8_BENCHMARKS, RTAD_FIG8_MODELS,
# RTAD_FIG8_ENGINES, RTAD_FIG8_ATTACKS, PERF_SMOKE_MIN_SPEEDUP (default 2.0).
#
# The default cell selection (hmmer, LSTM/MIAOW) is the workload the event
# kernel is built for: long 1-CU inferences during which the CPU and fabric
# domains are provably idle. The other cells are excluded from the timing
# by default — their wall-clock is dominated by genuine GPU instruction
# simulation (5 CUs, or ELM's near-continuous short inferences) that no
# scheduler can skip, which only dilutes the kernel-vs-kernel comparison.
# Full-matrix dense-vs-event identity is covered by the determinism test
# suite; this script asserts identity on its own cell too.
set -euo pipefail

BUILD_DIR="${1:?usage: perf_smoke.sh <build-dir> [output-json]}"
OUT_JSON="${2:-BENCH_fig8.json}"
BENCH="${BUILD_DIR}/bench/fig8_detection"
MIN_SPEEDUP="${PERF_SMOKE_MIN_SPEEDUP:-2.0}"

export RTAD_FIG8_BENCHMARKS="${RTAD_FIG8_BENCHMARKS:-hmmer}"
export RTAD_FIG8_MODELS="${RTAD_FIG8_MODELS:-lstm}"
export RTAD_FIG8_ENGINES="${RTAD_FIG8_ENGINES:-miaow}"
export RTAD_FIG8_ATTACKS="${RTAD_FIG8_ATTACKS:-8}"
export RTAD_FIG8_FAST_TRAIN="${RTAD_FIG8_FAST_TRAIN:-1}"
export RTAD_JOBS=1

workdir="$(mktemp -d)"
trap 'rm -rf "${workdir}"' EXIT

run_mode() {
  local mode="$1" out="$2" err="$3"
  local start end
  start=$(date +%s%N)
  RTAD_SCHED="${mode}" "${BENCH}" > "${out}" 2> "${err}"
  end=$(date +%s%N)
  echo $(( (end - start) / 1000000 ))
}

echo "perf_smoke: benchmarks=${RTAD_FIG8_BENCHMARKS} models=${RTAD_FIG8_MODELS} engines=${RTAD_FIG8_ENGINES} attacks=${RTAD_FIG8_ATTACKS} fast_train=${RTAD_FIG8_FAST_TRAIN}" >&2
dense_ms=$(run_mode dense "${workdir}/dense.txt" "${workdir}/dense.err")
event_ms=$(run_mode event "${workdir}/event.txt" "${workdir}/event.err")

# Byte-identity: the event kernel must not change a single stdout byte.
if ! cmp -s "${workdir}/dense.txt" "${workdir}/event.txt"; then
  echo "perf_smoke: FAIL — stdout differs between dense and event kernels" >&2
  diff "${workdir}/dense.txt" "${workdir}/event.txt" >&2 || true
  exit 1
fi

dense_matrix_ms=$(sed -n 's/^fig8: matrix_wall_ms=\([0-9]*\)$/\1/p' "${workdir}/dense.err")
event_matrix_ms=$(sed -n 's/^fig8: matrix_wall_ms=\([0-9]*\)$/\1/p' "${workdir}/event.err")
if [ -z "${dense_matrix_ms}" ] || [ -z "${event_matrix_ms}" ]; then
  echo "perf_smoke: FAIL — bench did not report matrix_wall_ms" >&2
  cat "${workdir}/event.err" >&2
  exit 1
fi

sched_line=$(grep -E '^fig8: scheduler=event' "${workdir}/event.err" || true)
skipped_groups=$(echo "${sched_line}" | sed -n 's/.*skipped_edge_groups=\([0-9]*\).*/\1/p')
skipped_cycles=$(echo "${sched_line}" | sed -n 's/.*skipped_cycles=\([0-9]*\).*/\1/p')
if [ -z "${skipped_groups}" ] || [ "${skipped_groups}" -eq 0 ]; then
  echo "perf_smoke: FAIL — event kernel reported no skipped edge groups" >&2
  cat "${workdir}/event.err" >&2
  exit 1
fi

speedup=$(awk -v d="${dense_matrix_ms}" -v e="${event_matrix_ms}" \
  'BEGIN { printf "%.2f", (e > 0 ? d / e : 0) }')

cat > "${OUT_JSON}" <<JSON
{
  "benchmark": "fig8_detection",
  "benchmarks": "${RTAD_FIG8_BENCHMARKS}",
  "models": "${RTAD_FIG8_MODELS}",
  "engines": "${RTAD_FIG8_ENGINES}",
  "attacks_per_cell": ${RTAD_FIG8_ATTACKS},
  "fast_train": ${RTAD_FIG8_FAST_TRAIN},
  "dense_wall_ms": ${dense_ms},
  "event_wall_ms": ${event_ms},
  "dense_matrix_wall_ms": ${dense_matrix_ms},
  "event_matrix_wall_ms": ${event_matrix_ms},
  "speedup": ${speedup},
  "stdout_identical": true,
  "event_skipped_edge_groups": ${skipped_groups},
  "event_skipped_cycles": ${skipped_cycles}
}
JSON

echo "perf_smoke: matrix dense=${dense_matrix_ms}ms event=${event_matrix_ms}ms speedup=${speedup}x (min ${MIN_SPEEDUP}x; total dense=${dense_ms}ms event=${event_ms}ms)" >&2
cat "${OUT_JSON}"

awk -v s="${speedup}" -v m="${MIN_SPEEDUP}" 'BEGIN { exit !(s >= m) }' || {
  echo "perf_smoke: FAIL — speedup ${speedup}x below minimum ${MIN_SPEEDUP}x" >&2
  exit 1
}
